// Failure-injection tests: crashed job attempts must requeue, burn
// accounted time, respect retry limits, and never corrupt the core
// accounting — plus the analytic posterior input-gradient added for
// gradient-based continuous suggestions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/scheduler.hpp"
#include "core/continuous.hpp"
#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace cl = alperf::cluster;
namespace gp = alperf::gp;
namespace la = alperf::la;
namespace opt = alperf::opt;
using alperf::stats::Rng;

namespace {

cl::PerfModelParams quiet() {
  cl::PerfModelParams p;
  p.noiseSigma = 1e-6;
  p.spikeProbability = 0.0;
  return p;
}

cl::ClusterConfig failing(double probability, int retries) {
  cl::ClusterConfig cfg;
  cfg.failureProbability = probability;
  cfg.maxRetries = retries;
  return cfg;
}

}  // namespace

TEST(FailureInjection, ZeroProbabilityIsCleanRun) {
  cl::ClusterSim sim(failing(0.0, 3), cl::PerfModel(quiet()), 1);
  sim.submit({cl::Operator::Poisson1, 1.0e6, 8, 2.4}, 0.0);
  sim.run();
  const auto& rec = sim.records()[0];
  EXPECT_EQ(rec.attempts, 1);
  EXPECT_FALSE(rec.failed);
  EXPECT_DOUBLE_EQ(rec.wastedSeconds, 0.0);
}

TEST(FailureInjection, RetriesEventuallySucceed) {
  // 50% failure, generous retries: every job should finish, some after
  // multiple attempts with wasted time accounted.
  cl::ClusterSim sim(failing(0.5, 10), cl::PerfModel(quiet()), 7);
  for (int i = 0; i < 30; ++i)
    sim.submit({cl::Operator::Poisson1, 1.0e6, 8, 2.4}, i * 1.0);
  sim.run();
  int retried = 0;
  for (const auto& rec : sim.records()) {
    EXPECT_FALSE(rec.failed) << "job " << rec.id;
    EXPECT_GE(rec.attempts, 1);
    if (rec.attempts > 1) {
      ++retried;
      EXPECT_GT(rec.wastedSeconds, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(rec.wastedSeconds, 0.0);
    }
    EXPECT_GT(rec.runtimeSeconds, 0.0);
  }
  EXPECT_GT(retried, 5);  // with p=0.5 over 30 jobs, many must retry
}

TEST(FailureInjection, ExhaustedRetriesMarkFailed) {
  // Certain failure, one retry: every job fails after exactly 2 attempts.
  cl::ClusterSim sim(failing(1.0, 1), cl::PerfModel(quiet()), 3);
  for (int i = 0; i < 5; ++i)
    sim.submit({cl::Operator::Poisson1, 1.0e6, 16, 2.4}, i * 1.0);
  sim.run();
  for (const auto& rec : sim.records()) {
    EXPECT_TRUE(rec.failed);
    EXPECT_EQ(rec.attempts, 2);
    EXPECT_GT(rec.wastedSeconds, 0.0);  // the first attempt's window
    // The terminal attempt still has a (partial) runtime and window.
    EXPECT_GT(rec.runtimeSeconds, 0.0);
    EXPECT_GT(rec.endTime, rec.startTime);
  }
}

TEST(FailureInjection, CoresNeverOverAllocatedUnderChaos) {
  cl::ClusterConfig cfg = failing(0.4, 5);
  cl::ClusterSim sim(cfg, cl::PerfModel(quiet()), 11);
  for (int i = 0; i < 40; ++i)
    sim.submit({cl::Operator::Poisson1, 1.0e6, 1 + (i * 13) % 64, 2.4},
               i * 0.5);
  sim.run();
  // Reconstruct per-node usage from load intervals at many probe times.
  for (int n = 0; n < cfg.nodes; ++n) {
    const auto& load = sim.nodeLoad(n);
    for (const auto& probe : load) {
      const double t = 0.5 * (probe.begin + probe.end);
      double util = 0.0;
      for (const auto& iv : load)
        if (iv.begin <= t && t < iv.end) util += iv.utilization;
      EXPECT_LE(util, 1.0 + 1e-9) << "node " << n << " t=" << t;
    }
  }
}

TEST(FailureInjection, WastedTimeGrowsWithFailureRate) {
  const auto totalWaste = [](double p, std::uint64_t seed) {
    cl::ClusterSim sim(failing(p, 10), cl::PerfModel(quiet()), seed);
    for (int i = 0; i < 25; ++i)
      sim.submit({cl::Operator::Poisson1, 1.0e7, 16, 2.4}, i * 1.0);
    sim.run();
    double w = 0.0;
    for (const auto& rec : sim.records()) w += rec.wastedSeconds;
    return w;
  };
  EXPECT_GT(totalWaste(0.6, 5), totalWaste(0.1, 5));
}

// ---------------------------------------- analytic posterior gradients

TEST(PredictGradient, MatchesFiniteDifferences) {
  Rng rng(1);
  la::Matrix x(12, 2);
  la::Vector y(12);
  for (std::size_t i = 0; i < 12; ++i) {
    x(i, 0) = rng.uniformReal(0.0, 4.0);
    x(i, 1) = rng.uniformReal(0.0, 4.0);
    y[i] = std::sin(x(i, 0)) - 0.5 * x(i, 1);
  }
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-4;
  gp::GaussianProcess g(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                        cfg);
  g.fit(x, y, rng);

  const double h = 1e-6;
  for (const auto& q :
       {std::vector<double>{1.0, 2.0}, std::vector<double>{3.3, 0.7}}) {
    const auto pg = g.predictOneWithGradient(q);
    const auto [m0, v0] = g.predictOne(q);
    EXPECT_NEAR(pg.mean, m0, 1e-12);
    EXPECT_NEAR(pg.variance, v0, 1e-12);
    for (std::size_t dim = 0; dim < 2; ++dim) {
      auto qp = q;
      qp[dim] += h;
      const auto [mUp, vUp] = g.predictOne(qp);
      qp[dim] = q[dim] - h;
      const auto [mDn, vDn] = g.predictOne(qp);
      EXPECT_NEAR(pg.meanGrad[dim], (mUp - mDn) / (2.0 * h), 1e-5)
          << "dim " << dim;
      EXPECT_NEAR(pg.varianceGrad[dim], (vUp - vDn) / (2.0 * h), 1e-5)
          << "dim " << dim;
    }
  }
}

TEST(KernelEvalGradX, AnalyticMatchesNumericAcrossKernels) {
  const std::vector<double> a{0.7, -0.3};
  const std::vector<double> b{-0.2, 1.1};
  std::vector<gp::KernelPtr> kernels;
  kernels.push_back(std::make_unique<gp::RbfKernel>(0.8));
  kernels.push_back(std::make_unique<gp::Matern32Kernel>(1.1));
  kernels.push_back(
      std::make_unique<gp::Matern52Kernel>(std::vector<double>{0.9, 1.3}));
  kernels.push_back(
      std::make_unique<gp::RationalQuadraticKernel>(1.2, 0.7));
  kernels.push_back(gp::makeSquaredExponential(2.0, 0.6));
  kernels.push_back(std::make_unique<gp::RbfKernel>(0.5) +
                    std::make_unique<gp::Matern32Kernel>(1.0));
  for (const auto& k : kernels) {
    std::vector<double> grad(2);
    k->evalGradX(a, b, grad);
    const double h = 1e-7;
    for (std::size_t d = 0; d < 2; ++d) {
      auto ap = a;
      ap[d] += h;
      const double up = k->eval(ap, b);
      ap[d] = a[d] - h;
      const double dn = k->eval(ap, b);
      EXPECT_NEAR(grad[d], (up - dn) / (2.0 * h), 1e-6)
          << k->describe() << " dim " << d;
    }
  }
}

TEST(KernelEvalGradX, ZeroAtCoincidentPointsForStationary) {
  gp::RbfKernel k(1.0);
  const std::vector<double> a{1.5, -2.0};
  std::vector<double> grad(2);
  k.evalGradX(a, a, grad);
  EXPECT_DOUBLE_EQ(grad[0], 0.0);
  EXPECT_DOUBLE_EQ(grad[1], 0.0);
}

TEST(SuggestContinuousGrad, AgreesWithNumericVariant) {
  Rng rng(2);
  std::vector<double> xs{0.0, 0.5, 1.0, 1.5, 2.0};
  la::Matrix x(xs.size(), 1);
  la::Vector y(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    x(i, 0) = xs[i];
    y[i] = std::sin(xs[i]);
  }
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-4;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  g.fit(x, y, rng);

  const opt::BoxBounds bounds({0.0}, {10.0});
  Rng r1(3), r2(3);
  const auto numeric =
      al::suggestContinuous(g, bounds, al::varianceAcquisition(), 6, r1);
  const auto analytic = al::suggestContinuous(
      g, bounds, al::varianceAcquisitionGrad(), 6, r2);
  // Same seeds, same starts: both should land on (nearly) the same
  // maximizer of the same smooth acquisition.
  EXPECT_NEAR(analytic.acquisition, numeric.acquisition,
              1e-3 * std::abs(numeric.acquisition));
  EXPECT_NEAR(analytic.x[0], numeric.x[0], 0.05);
}

TEST(SuggestContinuousGrad, Validation) {
  gp::GpConfig cfg;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  Rng rng(4);
  la::Matrix x(2, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  g.fit(x, la::Vector{0.0, 1.0}, rng);
  al::GradientAcquisition broken;
  broken.value = [](double, double sd) { return sd; };
  EXPECT_THROW(al::suggestContinuous(g, opt::BoxBounds({0.0}, {1.0}),
                                     broken, 2, rng),
               std::invalid_argument);
}
