// Tests for descriptive statistics and error metrics
// (stats/descriptive.hpp), including the paper's RMSE (eq. 2).

#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace st = alperf::stats;

TEST(Descriptive, SumAndMean) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(st::sum(v), 10.0);
  EXPECT_DOUBLE_EQ(st::mean(v), 2.5);
  EXPECT_DOUBLE_EQ(st::sum(std::vector<double>{}), 0.0);
  EXPECT_THROW(st::mean(std::vector<double>{}), std::invalid_argument);
}

TEST(Descriptive, SampleVarianceMatchesHand) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population variance of this classic example is 4; sample variance
  // = 32/7.
  EXPECT_NEAR(st::sampleVariance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(st::sampleStdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_THROW(st::sampleVariance(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Descriptive, GeometricMean) {
  const std::vector<double> v{1.0, 10.0, 100.0};
  EXPECT_NEAR(st::geometricMean(v), 10.0, 1e-12);
  EXPECT_THROW(st::geometricMean(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(st::minValue(v), -1.0);
  EXPECT_DOUBLE_EQ(st::maxValue(v), 7.0);
  EXPECT_THROW(st::minValue(std::vector<double>{}), std::invalid_argument);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(st::quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(st::quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(st::median(v), 2.5);
  EXPECT_DOUBLE_EQ(st::quantile(v, 1.0 / 3.0), 2.0);
  EXPECT_THROW(st::quantile(v, 1.5), std::invalid_argument);
}

TEST(Descriptive, RmseMatchesHand) {
  const std::vector<double> pred{1.0, 2.0, 3.0};
  const std::vector<double> truth{1.0, 4.0, 1.0};
  // errors 0, -2, 2 → rmse = sqrt(8/3).
  EXPECT_NEAR(st::rmse(pred, truth), std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(st::rmse(pred, pred), 0.0);
  EXPECT_THROW(st::rmse(pred, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Descriptive, Mae) {
  const std::vector<double> pred{1.0, 2.0, 3.0};
  const std::vector<double> truth{2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(st::mae(pred, truth), 1.0);
}

TEST(Descriptive, PearsonPerfectAndInverse) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(st::pearson(x, y), 1.0, 1e-12);
  const std::vector<double> yNeg{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(st::pearson(x, yNeg), -1.0, 1e-12);
  EXPECT_THROW(st::pearson(x, std::vector<double>{1.0, 1.0, 1.0, 1.0}),
               std::invalid_argument);
}

TEST(Descriptive, LinearFitExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const auto fit = st::linearFit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Descriptive, LinearFitR2DropsWithNoise) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + ((i % 2) ? 10.0 : -10.0));
  }
  const auto fit = st::linearFit(x, y);
  EXPECT_GT(fit.r2, 0.5);
  EXPECT_LT(fit.r2, 0.999);
}

TEST(Welford, MatchesBatchStatistics) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  st::Welford w;
  for (double x : v) w.add(x);
  EXPECT_EQ(w.count(), v.size());
  EXPECT_NEAR(w.mean(), st::mean(v), 1e-12);
  EXPECT_NEAR(w.sampleVariance(), st::sampleVariance(v), 1e-12);
  EXPECT_NEAR(w.sampleStdDev(), st::sampleStdDev(v), 1e-12);
}

TEST(Welford, RequiresSamples) {
  st::Welford w;
  EXPECT_THROW(w.mean(), std::invalid_argument);
  w.add(1.0);
  EXPECT_THROW(w.sampleVariance(), std::invalid_argument);
}

TEST(Welford, StableForLargeOffsets) {
  // Catastrophic cancellation check: values near 1e9 with tiny variance.
  st::Welford w;
  for (int i = 0; i < 1000; ++i) w.add(1e9 + (i % 2 ? 0.5 : -0.5));
  EXPECT_NEAR(w.sampleVariance(), 0.25, 1e-3);
}

// Parameterized: rmse(x, x + c) == |c| for any constant shift.
class RmseShiftProperty : public ::testing::TestWithParam<double> {};

TEST_P(RmseShiftProperty, ConstantShift) {
  const double c = GetParam();
  std::vector<double> x, y;
  for (int i = 0; i < 37; ++i) {
    x.push_back(std::sin(i * 0.7));
    y.push_back(x.back() + c);
  }
  EXPECT_NEAR(st::rmse(y, x), std::abs(c), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Shifts, RmseShiftProperty,
                         ::testing::Values(-3.0, -0.5, 0.0, 0.25, 1.0, 10.0));
