// Tests for calibration assessment (core/calibration.hpp), multi-response
// AL (core/multi.hpp), the umbrella header, and GP permutation
// invariance.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "alperf.hpp"

namespace al = alperf::al;
namespace gp = alperf::gp;
namespace la = alperf::la;
namespace st = alperf::stats;
using alperf::stats::Rng;

namespace {

la::Matrix col(const std::vector<double>& xs) {
  la::Matrix m(xs.size(), 1);
  for (std::size_t i = 0; i < xs.size(); ++i) m(i, 0) = xs[i];
  return m;
}

}  // namespace

// ------------------------------------------------------------ calibration

TEST(CentralIntervalZ, KnownQuantiles) {
  EXPECT_NEAR(al::centralIntervalZ(0.95), 1.95996, 1e-4);
  EXPECT_NEAR(al::centralIntervalZ(0.6827), 1.0, 1e-3);
  EXPECT_NEAR(al::centralIntervalZ(0.99), 2.5758, 1e-3);
  EXPECT_THROW(al::centralIntervalZ(0.0), std::invalid_argument);
  EXPECT_THROW(al::centralIntervalZ(1.0), std::invalid_argument);
}

TEST(Calibration, WellSpecifiedGpIsCalibrated) {
  // Data truly from noise sigma 0.1 around a smooth function; the fitted
  // GP's 95% intervals should cover ~95% of held-out points and rmsZ ≈ 1.
  Rng rng(1);
  std::vector<double> xs, ys;
  for (int i = 0; i < 60; ++i) {
    xs.push_back(rng.uniformReal(0.0, 6.0));
    ys.push_back(std::sin(xs.back()) + rng.normal(0.0, 0.1));
  }
  gp::GpConfig cfg;
  cfg.nRestarts = 2;
  cfg.noise.lo = 1e-6;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  g.fit(col(xs), ys, rng);

  la::Matrix testX(300, 1);
  la::Vector testY(300);
  for (int i = 0; i < 300; ++i) {
    testX(i, 0) = rng.uniformReal(0.2, 5.8);
    testY[i] = std::sin(testX(i, 0)) + rng.normal(0.0, 0.1);
  }
  const auto report = al::assessCalibration(g, testX, testY, 0.95);
  EXPECT_EQ(report.n, 300u);
  EXPECT_NEAR(report.coverage, 0.95, 0.05);
  EXPECT_NEAR(report.meanZ, 0.0, 0.15);
  EXPECT_NEAR(report.rmsZ, 1.0, 0.25);
}

TEST(Calibration, OverconfidentModelDetected) {
  // Force a tiny fixed noise on noisy data: intervals too narrow →
  // coverage well below 95% and rmsZ >> 1. (The Fig. 7a pathology.)
  Rng rng(2);
  std::vector<double> xs, ys;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(rng.uniformReal(0.0, 6.0));
    ys.push_back(std::sin(xs.back()) + rng.normal(0.0, 0.3));
  }
  gp::GpConfig cfg;
  cfg.optimize = false;
  cfg.noise.initial = 1e-6;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  g.fit(col(xs), ys, rng);

  la::Matrix testX(200, 1);
  la::Vector testY(200);
  for (int i = 0; i < 200; ++i) {
    testX(i, 0) = rng.uniformReal(0.2, 5.8);
    testY[i] = std::sin(testX(i, 0)) + rng.normal(0.0, 0.3);
  }
  const auto report = al::assessCalibration(g, testX, testY, 0.95);
  EXPECT_LT(report.coverage, 0.8);
  EXPECT_GT(report.rmsZ, 1.5);
}

TEST(Calibration, Validation) {
  gp::GpConfig cfg;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  EXPECT_THROW(al::assessCalibration(g, la::Matrix(1, 1), la::Vector{1.0}),
               std::invalid_argument);  // not fitted
  Rng rng(3);
  g.fit(col({0.0, 1.0}), la::Vector{0.0, 1.0}, rng);
  EXPECT_THROW(al::assessCalibration(g, la::Matrix(2, 1), la::Vector{1.0}),
               std::invalid_argument);  // size mismatch
}

// --------------------------------------------------------- multi-response

namespace {

/// Two responses over one 1-D design: log-runtime (rising) and
/// log-energy (U-shaped), with distinct scales.
al::MultiResponseProblem twoResponseProblem(std::size_t n, Rng& rng) {
  al::MultiResponseProblem p;
  p.x = la::Matrix(n, 1);
  p.responses.assign(2, la::Vector(n));
  p.responseNames = {"logRuntime", "logEnergy"};
  p.cost.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = 10.0 * static_cast<double>(i) / (n - 1);
    p.x(i, 0) = x;
    p.responses[0][i] = 0.3 * x + rng.normal(0.0, 0.02);
    p.responses[1][i] =
        3.0 + 0.1 * (x - 5.0) * (x - 5.0) + rng.normal(0.0, 0.05);
    p.cost[i] = std::pow(10.0, 0.3 * x);
  }
  return p;
}

gp::GaussianProcess proto() {
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-3;
  cfg.optStop.maxIterations = 30;
  return gp::GaussianProcess(gp::makeSquaredExponential(1.0, 1.0), cfg);
}

}  // namespace

TEST(MultiResponseAl, LearnsBothResponses) {
  Rng dataRng(4);
  const auto problem = twoResponseProblem(60, dataRng);
  al::MultiAlConfig cfg;
  cfg.maxIterations = 25;
  Rng rng(5);
  const auto result = al::runMultiResponseAl(problem, proto(), cfg, rng);
  ASSERT_EQ(result.history.size(), 25u);
  ASSERT_EQ(result.finalGps.size(), 2u);
  // Both responses' RMSE improve substantially from start to finish.
  const auto& first = result.history.front();
  const auto& last = result.history.back();
  EXPECT_LT(last.rmse[0], first.rmse[0]);
  EXPECT_LT(last.rmse[1], first.rmse[1]);
  EXPECT_LT(last.rmse[0], 0.2);
  EXPECT_LT(last.rmse[1], 0.4);
  // One shared sequence: picks are distinct rows from the active pool.
  std::set<std::size_t> picked;
  const std::set<std::size_t> active(result.partition.active.begin(),
                                     result.partition.active.end());
  for (const auto& rec : result.history) {
    EXPECT_TRUE(active.count(rec.chosenRow));
    EXPECT_TRUE(picked.insert(rec.chosenRow).second);
  }
}

TEST(MultiResponseAl, MeanAggregationAlsoWorks) {
  Rng dataRng(6);
  const auto problem = twoResponseProblem(50, dataRng);
  al::MultiAlConfig cfg;
  cfg.maxIterations = 15;
  cfg.aggregateMax = false;
  Rng rng(7);
  const auto result = al::runMultiResponseAl(problem, proto(), cfg, rng);
  EXPECT_EQ(result.history.size(), 15u);
  EXPECT_LT(result.history.back().rmse[0], result.history.front().rmse[0]);
}

TEST(MultiResponseAl, CostAwareSpendsLess) {
  Rng dataRng(8);
  const auto problem = twoResponseProblem(60, dataRng);
  al::MultiAlConfig plain;
  plain.maxIterations = 20;
  al::MultiAlConfig aware = plain;
  aware.costAware = true;
  Rng r1(9), r2(9);
  const auto a = al::runMultiResponseAl(problem, proto(), plain, r1);
  const auto b = al::runMultiResponseAl(problem, proto(), aware, r2);
  EXPECT_LT(b.history.back().cumulativeCost,
            a.history.back().cumulativeCost);
}

TEST(MultiResponseAl, Validation) {
  al::MultiResponseProblem bad;
  bad.x = la::Matrix(3, 1);
  bad.responses = {la::Vector(2)};  // wrong length
  bad.responseNames = {"r"};
  bad.cost = la::Vector(3, 1.0);
  al::MultiAlConfig cfg;
  Rng rng(10);
  EXPECT_THROW(al::runMultiResponseAl(bad, proto(), cfg, rng),
               std::invalid_argument);
}

// ------------------------------------------------- permutation invariance

TEST(Gp, PredictionsInvariantToTrainingOrder) {
  Rng rng(11);
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(rng.uniformReal(0.0, 5.0));
    ys.push_back(std::cos(xs.back()));
  }
  gp::GpConfig cfg;
  cfg.optimize = false;
  cfg.noise.initial = 1e-3;
  gp::GaussianProcess a(gp::makeSquaredExponential(1.3, 0.8), cfg);
  a.fit(col(xs), ys, rng);

  // Shuffle the rows and refit an identical GP.
  auto perm = st::permutation(xs.size(), rng);
  std::vector<double> xs2(xs.size()), ys2(ys.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    xs2[i] = xs[perm[i]];
    ys2[i] = ys[perm[i]];
  }
  gp::GaussianProcess b(gp::makeSquaredExponential(1.3, 0.8), cfg);
  b.fit(col(xs2), ys2, rng);

  for (double q = 0.1; q < 5.0; q += 0.63) {
    const auto [ma, va] = a.predictOne(std::vector<double>{q});
    const auto [mb, vb] = b.predictOne(std::vector<double>{q});
    EXPECT_NEAR(ma, mb, 1e-9) << q;
    EXPECT_NEAR(va, vb, 1e-9) << q;
  }
}
