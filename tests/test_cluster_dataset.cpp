// Tests for end-to-end dataset generation (cluster/dataset.hpp): campaign
// planning, repeats, determinism, and the structural properties of the
// Performance and Power tables the AL evaluation depends on.

#include "cluster/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "stats/descriptive.hpp"

namespace cl = alperf::cluster;
namespace st = alperf::stats;

namespace {

cl::DatasetConfig smallConfig() {
  cl::DatasetConfig cfg;
  cfg.sizes = {1728.0, 110592.0, 7.077888e6, 4.52984832e8};
  cfg.npLevels = {1, 8, 32, 64, 128};
  cfg.freqLevels = {1.2, 1.8, 2.4};
  cfg.targetJobs = 250;  // 180 combos + 70 repeats
  cfg.seed = 7;
  return cfg;
}

const cl::GeneratedDataset& smallDataset() {
  static const cl::GeneratedDataset ds =
      cl::DatasetGenerator(smallConfig()).generate();
  return ds;
}

}  // namespace

TEST(DefaultSizeLadder, MatchesTableIRange) {
  const auto sizes = cl::defaultSizeLadder();
  ASSERT_EQ(sizes.size(), 14u);
  EXPECT_DOUBLE_EQ(sizes.front(), 1728.0);       // 12³ ≈ 1.7e3
  EXPECT_DOUBLE_EQ(sizes.back(), 1073741824.0);  // 1024³ ≈ 1.1e9
  for (std::size_t i = 1; i < sizes.size(); ++i)
    EXPECT_GT(sizes[i], sizes[i - 1]);
}

TEST(DatasetGenerator, CombinationCount) {
  const cl::DatasetGenerator gen(smallConfig());
  EXPECT_EQ(gen.combinations().size(), 3u * 4u * 5u * 3u);
}

TEST(DatasetGenerator, TargetJobCountHitExactly) {
  const auto& ds = smallDataset();
  EXPECT_EQ(ds.performance.numRows(), 250u);
  EXPECT_EQ(ds.records.size(), 250u);
}

TEST(DatasetGenerator, RepeatsBoundedByMax) {
  const auto& ds = smallDataset();
  std::map<std::tuple<std::string, double, double, double>, int> counts;
  const auto op = ds.performance.categorical("Operator");
  const auto size = ds.performance.numeric("GlobalSize");
  const auto np = ds.performance.numeric("NP");
  const auto freq = ds.performance.numeric("FreqGHz");
  for (std::size_t i = 0; i < ds.performance.numRows(); ++i)
    ++counts[{std::string(op[i]), size[i], np[i], freq[i]}];
  int repeated = 0;
  for (const auto& [combo, count] : counts) {
    EXPECT_GE(count, 1);
    EXPECT_LE(count, 3);
    if (count > 1) ++repeated;
  }
  EXPECT_EQ(counts.size(), 180u);  // every combo ran at least once
  EXPECT_GT(repeated, 0);
}

TEST(DatasetGenerator, DeterministicForFixedSeed) {
  const auto a = cl::DatasetGenerator(smallConfig()).generate();
  const auto b = cl::DatasetGenerator(smallConfig()).generate();
  ASSERT_EQ(a.performance.numRows(), b.performance.numRows());
  const auto ra = a.performance.numeric("RuntimeS");
  const auto rb = b.performance.numeric("RuntimeS");
  for (std::size_t i = 0; i < ra.size(); ++i)
    EXPECT_DOUBLE_EQ(ra[i], rb[i]);
  EXPECT_EQ(a.power.numRows(), b.power.numRows());
}

TEST(DatasetGenerator, SeedChangesData) {
  auto cfg = smallConfig();
  cfg.seed = 99;
  const auto b = cl::DatasetGenerator(cfg).generate();
  const auto& a = smallDataset();
  const auto ra = a.performance.numeric("RuntimeS");
  const auto rb = b.performance.numeric("RuntimeS");
  int same = 0;
  for (std::size_t i = 0; i < std::min(ra.size(), rb.size()); ++i)
    if (ra[i] == rb[i]) ++same;
  EXPECT_LT(same, 10);
}

TEST(DatasetGenerator, PowerIsSubsetWithEnergy) {
  const auto& ds = smallDataset();
  EXPECT_GT(ds.power.numRows(), 0u);
  EXPECT_LT(ds.power.numRows(), ds.performance.numRows());
  EXPECT_TRUE(ds.power.hasColumn("EnergyJ"));
  EXPECT_FALSE(ds.performance.hasColumn("EnergyJ"));
  for (double e : ds.power.numeric("EnergyJ")) EXPECT_GT(e, 0.0);
  for (double v : ds.power.numeric("EnergyValid")) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(DatasetGenerator, RuntimesPositiveAndWideRange) {
  const auto& ds = smallDataset();
  const auto rt = ds.performance.numeric("RuntimeS");
  for (double t : rt) EXPECT_GT(t, 0.0);
  // Orders of magnitude between smallest and largest (Table I: 5 decades
  // on the full ladder; the reduced ladder still spans > 3).
  EXPECT_GT(st::maxValue(rt) / st::minValue(rt), 1e3);
}

TEST(DatasetGenerator, EnergyScalesWithWindowAndNodes) {
  const auto& ds = smallDataset();
  const auto energy = ds.power.numeric("EnergyJ");
  const auto start = ds.power.numeric("StartTime");
  const auto end = ds.power.numeric("EndTime");
  const auto nodes = ds.power.numeric("NodesUsed");
  for (std::size_t i = 0; i < ds.power.numRows(); ++i) {
    const double window = end[i] - start[i];
    // Bounded below by idle draw and above by max draw across its nodes
    // (loose factors for noise/wander).
    EXPECT_GT(energy[i], 100.0 * window * nodes[i]);
    EXPECT_LT(energy[i], 320.0 * window * nodes[i]);
  }
}

TEST(DatasetGenerator, RecordsAlignWithTable) {
  const auto& ds = smallDataset();
  const auto ids = ds.performance.numeric("JobId");
  for (std::size_t i = 0; i < ds.performance.numRows(); ++i) {
    const auto& rec = ds.records[static_cast<std::size_t>(ids[i])];
    EXPECT_DOUBLE_EQ(ds.performance.numeric("RuntimeS")[i],
                     rec.runtimeSeconds);
    EXPECT_EQ(ds.performance.categorical("Operator")[i],
              cl::toString(rec.request.op));
  }
}

TEST(DatasetGenerator, LogRuntimeLinearInLogSizeAtFixedNpFreq) {
  // The Fig. 2 structural check on generated data.
  const auto& ds = smallDataset();
  const auto& t = ds.performance;
  std::vector<double> logSize, logTime;
  const auto op = t.categorical("Operator");
  const auto np = t.numeric("NP");
  const auto freq = t.numeric("FreqGHz");
  for (std::size_t i = 0; i < t.numRows(); ++i) {
    // Restrict to sizes above the latency-floor regime: log runtime is
    // linear in log size only once compute dominates the fixed overheads
    // (the paper's Fig. 2 shows the same flattening at tiny sizes).
    if (op[i] == "poisson1" && np[i] == 32.0 && freq[i] == 2.4 &&
        t.numeric("GlobalSize")[i] >= 1.0e5) {
      logSize.push_back(std::log10(t.numeric("GlobalSize")[i]));
      logTime.push_back(std::log10(t.numeric("RuntimeS")[i]));
    }
  }
  ASSERT_GE(logSize.size(), 3u);
  const auto fit = st::linearFit(logSize, logTime);
  EXPECT_GT(fit.r2, 0.9);
  EXPECT_GT(fit.slope, 0.6);
  EXPECT_LT(fit.slope, 1.3);
}

TEST(DatasetGenerator, ValidationErrors) {
  auto cfg = smallConfig();
  cfg.targetJobs = 10;  // below one per combo
  EXPECT_THROW(cl::DatasetGenerator(cfg).generate(), std::invalid_argument);
  cfg = smallConfig();
  cfg.targetJobs = 100000;  // above maxRepeats * combos
  EXPECT_THROW(cl::DatasetGenerator(cfg).generate(), std::invalid_argument);
  cfg = smallConfig();
  cfg.operators.clear();
  EXPECT_THROW(cl::DatasetGenerator{cfg}, std::invalid_argument);
}
