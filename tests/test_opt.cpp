// Tests for the optimization module: numeric gradients, box bounds,
// projected gradient descent, L-BFGS, multi-start, and golden section.

#include <gtest/gtest.h>

#include <cmath>

#include "opt/gradient.hpp"
#include "opt/multistart.hpp"
#include "opt/neldermead.hpp"

namespace opt = alperf::opt;
using alperf::stats::Rng;

namespace {

/// Shifted quadratic: f(x) = Σ wᵢ (xᵢ - cᵢ)².
class Quadratic final : public opt::Objective {
 public:
  Quadratic(std::vector<double> center, std::vector<double> weights)
      : c_(std::move(center)), w_(std::move(weights)) {}

  std::size_t dim() const override { return c_.size(); }
  double value(std::span<const double> x) const override {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      s += w_[i] * (x[i] - c_[i]) * (x[i] - c_[i]);
    return s;
  }
  void gradient(std::span<const double> x,
                std::span<double> g) const override {
    for (std::size_t i = 0; i < x.size(); ++i)
      g[i] = 2.0 * w_[i] * (x[i] - c_[i]);
  }

 private:
  std::vector<double> c_, w_;
};

/// Rosenbrock in 2D: hard for steepest descent, classic L-BFGS check.
class Rosenbrock final : public opt::Objective {
 public:
  std::size_t dim() const override { return 2; }
  double value(std::span<const double> x) const override {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  }
  void gradient(std::span<const double> x,
                std::span<double> g) const override {
    const double b = x[1] - x[0] * x[0];
    g[0] = -2.0 * (1.0 - x[0]) - 400.0 * x[0] * b;
    g[1] = 200.0 * b;
  }
};

}  // namespace

TEST(NumericGradient, MatchesAnalyticOnQuadratic) {
  const Quadratic q({1.0, -2.0, 0.5}, {1.0, 3.0, 0.25});
  const std::vector<double> x{0.3, 0.7, -1.1};
  std::vector<double> gNum(3), gAna(3);
  opt::numericGradient(q, x, gNum);
  q.gradient(x, gAna);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(gNum[i], gAna[i], 1e-6);
}

TEST(NumericGradient, DefaultObjectiveGradientIsNumeric) {
  // An Objective that doesn't override gradient() gets finite differences.
  opt::FunctionObjective f(1, [](std::span<const double> x) {
    return std::sin(x[0]);
  });
  std::vector<double> g(1);
  const std::vector<double> x{0.3};
  f.gradient(x, g);
  EXPECT_NEAR(g[0], std::cos(0.3), 1e-6);
}

TEST(FunctionObjective, UsesProvidedGradient) {
  bool called = false;
  opt::FunctionObjective f(
      1, [](std::span<const double> x) { return x[0] * x[0]; },
      [&called](std::span<const double> x, std::span<double> g) {
        called = true;
        g[0] = 2.0 * x[0];
      });
  std::vector<double> g(1);
  f.gradient(std::vector<double>{3.0}, g);
  EXPECT_TRUE(called);
  EXPECT_DOUBLE_EQ(g[0], 6.0);
}

TEST(FunctionObjective, NullValueThrows) {
  EXPECT_THROW(opt::FunctionObjective(1, nullptr), std::invalid_argument);
}

TEST(BoxBounds, ProjectClamps) {
  opt::BoxBounds b({0.0, -1.0}, {1.0, 1.0});
  std::vector<double> x{2.0, -3.0};
  b.project(x);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -1.0);
  EXPECT_TRUE(b.contains(x));
}

TEST(BoxBounds, InvalidThrows) {
  EXPECT_THROW(opt::BoxBounds({1.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(opt::BoxBounds({1.0}, {2.0, 3.0}), std::invalid_argument);
}

TEST(BoxBounds, SampleInsideAndUnboundedThrows) {
  Rng rng(1);
  opt::BoxBounds b({-2.0, 0.0}, {2.0, 5.0});
  for (int i = 0; i < 100; ++i) {
    const auto x = b.sample(rng);
    EXPECT_TRUE(b.contains(x));
  }
  EXPECT_THROW(opt::BoxBounds::unbounded(2).sample(rng),
               std::invalid_argument);
}

TEST(ProjectedGradientDescent, SolvesUnconstrainedQuadratic) {
  const Quadratic q({2.0, -1.0}, {1.0, 4.0});
  const opt::ProjectedGradientDescent pgd;
  const auto r = pgd.minimize(q, std::vector<double>{0.0, 0.0},
                              opt::BoxBounds::unbounded(2));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-4);
  EXPECT_NEAR(r.x[1], -1.0, 1e-4);
  EXPECT_NEAR(r.fval, 0.0, 1e-7);
}

TEST(ProjectedGradientDescent, RespectsActiveBound) {
  // Minimum at x = 2 but box caps at 1 → solution sticks to the bound.
  const Quadratic q({2.0}, {1.0});
  const opt::ProjectedGradientDescent pgd;
  const auto r = pgd.minimize(q, std::vector<double>{0.0},
                              opt::BoxBounds({-1.0}, {1.0}));
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
}

TEST(ProjectedGradientDescent, StartOutsideBoxGetsProjected) {
  const Quadratic q({0.0}, {1.0});
  const opt::ProjectedGradientDescent pgd;
  const auto r = pgd.minimize(q, std::vector<double>{100.0},
                              opt::BoxBounds({-1.0}, {1.0}));
  EXPECT_NEAR(r.x[0], 0.0, 1e-5);
}

TEST(ProjectedGradientDescent, DimensionMismatchThrows) {
  const Quadratic q({0.0}, {1.0});
  const opt::ProjectedGradientDescent pgd;
  EXPECT_THROW(pgd.minimize(q, std::vector<double>{0.0, 0.0},
                            opt::BoxBounds::unbounded(2)),
               std::invalid_argument);
}

TEST(Lbfgs, SolvesQuadraticFast) {
  const Quadratic q({1.0, 2.0, 3.0, 4.0}, {1.0, 2.0, 3.0, 4.0});
  const opt::Lbfgs lbfgs;
  const auto r = lbfgs.minimize(q, std::vector<double>(4, 0.0),
                                opt::BoxBounds::unbounded(4));
  EXPECT_TRUE(r.converged);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(r.x[i], i + 1.0, 1e-4);
}

TEST(Lbfgs, SolvesRosenbrock) {
  const Rosenbrock f;
  opt::StopCriteria stop;
  stop.maxIterations = 500;
  const opt::Lbfgs lbfgs(stop);
  const auto r = lbfgs.minimize(f, std::vector<double>{-1.2, 1.0},
                                opt::BoxBounds::unbounded(2));
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(Lbfgs, BeatsOrMatchesPgdOnRosenbrockBudget) {
  const Rosenbrock f;
  opt::StopCriteria stop;
  stop.maxIterations = 120;
  const auto rL = opt::Lbfgs(stop).minimize(
      f, std::vector<double>{-1.2, 1.0}, opt::BoxBounds::unbounded(2));
  const auto rP = opt::ProjectedGradientDescent(stop).minimize(
      f, std::vector<double>{-1.2, 1.0}, opt::BoxBounds::unbounded(2));
  EXPECT_LE(rL.fval, rP.fval + 1e-9);
}

TEST(Lbfgs, RespectsBounds) {
  const Quadratic q({5.0, -5.0}, {1.0, 1.0});
  const opt::Lbfgs lbfgs;
  const auto r = lbfgs.minimize(q, std::vector<double>{0.0, 0.0},
                                opt::BoxBounds({-1.0, -1.0}, {1.0, 1.0}));
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
  EXPECT_NEAR(r.x[1], -1.0, 1e-6);
}

TEST(MultiStart, FindsGlobalOfMultimodal) {
  // f(x) = sin(3x) + 0.1 x² on [-4, 4]: global min near x ≈ -1.67 wells;
  // a single start from x=3 lands in a local well, multistart should do
  // no worse and typically better.
  opt::FunctionObjective f(1, [](std::span<const double> x) {
    return std::sin(3.0 * x[0]) + 0.1 * x[0] * x[0];
  });
  const opt::BoxBounds bounds({-4.0}, {4.0});
  const opt::Lbfgs local;
  const auto minimizer = [&local](const opt::Objective& obj,
                                  std::span<const double> x0,
                                  const opt::BoxBounds& b) {
    return local.minimize(obj, x0, b);
  };
  Rng rng(7);
  const auto single = local.minimize(f, std::vector<double>{3.0}, bounds);
  const auto multi = opt::multiStartMinimize(
      f, std::vector<double>{3.0}, bounds, minimizer, 12, rng);
  EXPECT_LE(multi.best.fval, single.fval + 1e-12);
  // Global minimum value is ≈ -0.76 (well near x ≈ -1.6).
  EXPECT_LT(multi.best.fval, -0.7);
  EXPECT_EQ(multi.all.size(), 13u);
}

TEST(MultiStart, ZeroRestartsEqualsSingleRun) {
  const Quadratic q({1.0}, {1.0});
  const opt::Lbfgs local;
  const auto minimizer = [&local](const opt::Objective& obj,
                                  std::span<const double> x0,
                                  const opt::BoxBounds& b) {
    return local.minimize(obj, x0, b);
  };
  Rng rng(1);
  const auto multi =
      opt::multiStartMinimize(q, std::vector<double>{0.0},
                              opt::BoxBounds({-5.0}, {5.0}), minimizer, 0,
                              rng);
  EXPECT_EQ(multi.all.size(), 1u);
  EXPECT_NEAR(multi.best.x[0], 1.0, 1e-5);
}

TEST(NelderMead, SolvesQuadratic) {
  const Quadratic q({2.0, -1.0, 0.5}, {1.0, 3.0, 0.5});
  const auto r = opt::nelderMeadMinimize(q, std::vector<double>{0.0, 0.0, 0.0},
                                         opt::BoxBounds::unbounded(3));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-3);
  EXPECT_NEAR(r.x[1], -1.0, 1e-3);
  EXPECT_NEAR(r.x[2], 0.5, 1e-3);
}

TEST(NelderMead, SolvesRosenbrockDerivativeFree) {
  const Rosenbrock f;
  opt::NelderMeadOptions options;
  options.maxIterations = 2000;
  const auto r = opt::nelderMeadMinimize(f, std::vector<double>{-1.2, 1.0},
                                         opt::BoxBounds::unbounded(2),
                                         options);
  EXPECT_NEAR(r.x[0], 1.0, 1e-2);
  EXPECT_NEAR(r.x[1], 1.0, 1e-2);
}

TEST(NelderMead, RespectsBounds) {
  const Quadratic q({5.0}, {1.0});
  const auto r = opt::nelderMeadMinimize(q, std::vector<double>{0.0},
                                         opt::BoxBounds({-1.0}, {1.0}));
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
}

TEST(NelderMead, HandlesNonSmoothObjective) {
  // |x - 1.5| + |y + 0.5|: gradients undefined at the optimum; the
  // simplex method converges regardless.
  opt::FunctionObjective f(2, [](std::span<const double> x) {
    return std::abs(x[0] - 1.5) + std::abs(x[1] + 0.5);
  });
  const auto r = opt::nelderMeadMinimize(f, std::vector<double>{0.0, 0.0},
                                         opt::BoxBounds::unbounded(2));
  EXPECT_NEAR(r.x[0], 1.5, 1e-3);
  EXPECT_NEAR(r.x[1], -0.5, 1e-3);
}

TEST(NelderMead, Validation) {
  const Quadratic q({0.0}, {1.0});
  EXPECT_THROW(opt::nelderMeadMinimize(q, std::vector<double>{0.0, 0.0},
                                       opt::BoxBounds::unbounded(2)),
               std::invalid_argument);
  opt::NelderMeadOptions bad;
  bad.maxIterations = 0;
  EXPECT_THROW(opt::nelderMeadMinimize(q, std::vector<double>{0.0},
                                       opt::BoxBounds::unbounded(1), bad),
               std::invalid_argument);
}

TEST(GoldenSection, FindsMinimumOfParabola) {
  const double x =
      opt::goldenSection([](double t) { return (t - 1.3) * (t - 1.3); },
                         -10.0, 10.0);
  EXPECT_NEAR(x, 1.3, 1e-6);
}

TEST(GoldenSection, Validation) {
  EXPECT_THROW(opt::goldenSection([](double) { return 0.0; }, 1.0, 0.0),
               std::invalid_argument);
}

// Parameterized: both optimizers solve scaled quadratics across condition
// numbers.
class OptimizerConditioning : public ::testing::TestWithParam<double> {};

TEST_P(OptimizerConditioning, LbfgsHandlesConditioning) {
  const double kappa = GetParam();
  const Quadratic q({1.0, 1.0}, {1.0, kappa});
  opt::StopCriteria stop;
  stop.maxIterations = 400;
  const auto r = opt::Lbfgs(stop).minimize(q, std::vector<double>{-3.0, 4.0},
                                           opt::BoxBounds::unbounded(2));
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Kappas, OptimizerConditioning,
                         ::testing::Values(1.0, 10.0, 100.0, 1000.0));
