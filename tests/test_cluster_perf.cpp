// Tests for the HPGMG-FE runtime model (cluster/perf_model.hpp): the
// monotonicity and scaling properties the paper's dataset exhibits.

#include "cluster/perf_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cl = alperf::cluster;
using cl::JobRequest;
using cl::Operator;
using cl::PerfModel;

namespace {

JobRequest job(Operator op, double n, int np, double f) {
  return {op, n, np, f};
}

}  // namespace

TEST(OperatorNames, RoundTrip) {
  for (Operator op : cl::kAllOperators)
    EXPECT_EQ(cl::operatorFromString(cl::toString(op)), op);
  EXPECT_EQ(cl::toString(Operator::Poisson2Affine), "poisson2affine");
  EXPECT_THROW(cl::operatorFromString("bogus"), std::invalid_argument);
}

TEST(PerfModel, MachineShape) {
  const PerfModel m;
  EXPECT_EQ(m.totalCores(), 64);
  EXPECT_EQ(m.coresUsed(1), 1);
  EXPECT_EQ(m.coresUsed(128), 64);  // capped
  EXPECT_EQ(m.nodesUsed(1), 1);
  EXPECT_EQ(m.nodesUsed(16), 1);
  EXPECT_EQ(m.nodesUsed(17), 2);
  EXPECT_EQ(m.nodesUsed(64), 4);
  EXPECT_EQ(m.nodesUsed(128), 4);
}

TEST(PerfModel, LevelsGrowWithSize) {
  const PerfModel m;
  EXPECT_EQ(m.levels(500.0), 1);
  EXPECT_GT(m.levels(1.0e6), m.levels(1.0e4));
  EXPECT_GE(m.levels(1.1e9), 7);
  EXPECT_THROW(m.levels(0.5), std::invalid_argument);
}

TEST(PerfModel, RuntimeIncreasesWithProblemSize) {
  const PerfModel m;
  double prev = 0.0;
  for (double n : {1.7e3, 1.0e5, 1.0e7, 1.0e9}) {
    const double t = m.meanRuntime(job(Operator::Poisson1, n, 32, 2.4));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(PerfModel, RuntimeNearLinearInSizeForLargeProblems) {
  // log t vs log N slope ≈ 1 (paper Fig. 2 observation).
  const PerfModel m;
  const double t1 = m.meanRuntime(job(Operator::Poisson1, 1.0e8, 32, 2.4));
  const double t2 = m.meanRuntime(job(Operator::Poisson1, 1.0e9, 32, 2.4));
  const double slope = std::log10(t2 / t1);
  EXPECT_NEAR(slope, 1.0, 0.15);
}

TEST(PerfModel, RuntimeDecreasesWithFrequency) {
  const PerfModel m;
  const double slow = m.meanRuntime(job(Operator::Poisson2, 1.0e7, 16, 1.2));
  const double fast = m.meanRuntime(job(Operator::Poisson2, 1.0e7, 16, 2.4));
  EXPECT_GT(slow, fast);
  // Sub-linear frequency benefit (memory-bound): speedup < 2x for 2x clock.
  EXPECT_LT(slow / fast, 2.0);
  EXPECT_GT(slow / fast, 1.2);
}

TEST(PerfModel, StrongScalingHelpsLargeProblems) {
  const PerfModel m;
  const double t1 = m.meanRuntime(job(Operator::Poisson1, 1.0e8, 1, 2.4));
  const double t16 = m.meanRuntime(job(Operator::Poisson1, 1.0e8, 16, 2.4));
  const double t64 = m.meanRuntime(job(Operator::Poisson1, 1.0e8, 64, 2.4));
  EXPECT_GT(t1, t16);
  EXPECT_GT(t16, t64);
  // Efficiency loss: 64-way speedup well below 64.
  EXPECT_LT(t1 / t64, 64.0);
  EXPECT_GT(t1 / t64, 4.0);
}

TEST(PerfModel, OversubscriptionHurts) {
  const PerfModel m;
  const double t64 = m.meanRuntime(job(Operator::Poisson1, 1.0e7, 64, 2.4));
  const double t128 = m.meanRuntime(job(Operator::Poisson1, 1.0e7, 128, 2.4));
  EXPECT_GT(t128, t64);
}

TEST(PerfModel, OperatorCostOrdering) {
  const PerfModel m;
  const double p1 = m.meanRuntime(job(Operator::Poisson1, 1.0e7, 32, 2.4));
  const double p2 = m.meanRuntime(job(Operator::Poisson2, 1.0e7, 32, 2.4));
  const double p2a =
      m.meanRuntime(job(Operator::Poisson2Affine, 1.0e7, 32, 2.4));
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p2a);
}

TEST(PerfModel, TableIRuntimeRangeCovered) {
  // The generated campaign must span roughly 0.005–458 s (Table I).
  const PerfModel m;
  const double tMin =
      m.meanRuntime(job(Operator::Poisson1, 1728.0, 128, 2.4));
  const double tMax =
      m.meanRuntime(job(Operator::Poisson2Affine, 1.073741824e9, 1, 1.2));
  EXPECT_LT(tMin, 0.02);
  EXPECT_GT(tMin, 0.001);
  EXPECT_GT(tMax, 200.0);
  EXPECT_LT(tMax, 1500.0);
}

TEST(PerfModel, SmallJobsHitLatencyFloor) {
  // For tiny problems runtime is dominated by per-level latency, so more
  // processes do NOT help.
  const PerfModel m;
  const double t1 = m.meanRuntime(job(Operator::Poisson1, 1728.0, 1, 2.4));
  const double t64 = m.meanRuntime(job(Operator::Poisson1, 1728.0, 64, 2.4));
  EXPECT_GT(t64, 0.5 * t1);  // nowhere near 64x speedup
}

TEST(PerfModel, SampleRuntimeIsNoisyButUnbiasedish) {
  const PerfModel m;
  alperf::stats::Rng rng(1);
  const JobRequest r = job(Operator::Poisson1, 1.0e6, 8, 1.8);
  const double mean = m.meanRuntime(r);
  double sum = 0.0;
  double lo = 1e300, hi = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double t = m.sampleRuntime(r, rng);
    EXPECT_GT(t, 0.0);
    sum += t;
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  // Mean within ~5% (spikes push it slightly up).
  EXPECT_NEAR(sum / n, mean, 0.05 * mean);
  EXPECT_LT(lo, mean);
  EXPECT_GT(hi, mean);
}

TEST(PerfModel, SpikesProduceHeavyTail) {
  cl::PerfModelParams p;
  p.spikeProbability = 0.5;
  p.spikeScale = 1.0;
  const PerfModel m(p);
  alperf::stats::Rng rng(2);
  const JobRequest r = job(Operator::Poisson1, 1.0e6, 8, 2.4);
  const double mean = m.meanRuntime(r);
  int spiky = 0;
  for (int i = 0; i < 500; ++i)
    if (m.sampleRuntime(r, rng) > 1.5 * mean) ++spiky;
  EXPECT_GT(spiky, 50);
}

TEST(PerfModel, Validation) {
  const PerfModel m;
  EXPECT_THROW(m.meanRuntime(job(Operator::Poisson1, 0.0, 1, 2.4)),
               std::invalid_argument);
  EXPECT_THROW(m.meanRuntime(job(Operator::Poisson1, 1e6, 1, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(m.coresUsed(0), std::invalid_argument);
  cl::PerfModelParams bad;
  bad.coresPerNode = 0;
  EXPECT_THROW(PerfModel{bad}, std::invalid_argument);
}

// Parameterized property: runtime is monotone non-increasing in np for a
// fixed large problem, across operators and frequencies.
class PerfMonotoneNp
    : public ::testing::TestWithParam<std::tuple<Operator, double>> {};

TEST_P(PerfMonotoneNp, RuntimeMonotoneInNp) {
  const auto [op, f] = GetParam();
  const PerfModel m;
  double prev = 1e300;
  for (int np : {1, 2, 4, 8, 16, 24, 32, 48, 64}) {
    const double t = m.meanRuntime(job(op, 1.0e8, np, f));
    EXPECT_LT(t, prev) << "np=" << np;
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PerfMonotoneNp,
    ::testing::Combine(::testing::Values(Operator::Poisson1,
                                         Operator::Poisson2,
                                         Operator::Poisson2Affine),
                       ::testing::Values(1.2, 1.8, 2.4)));
