// Tests for the sparse GP approximation (gp/sparse.hpp), group-by
// aggregation (data/groupby.hpp), W-cycles, and the scheduler utilization
// accounting added as extensions.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "cluster/scheduler.hpp"
#include "data/groupby.hpp"
#include "gp/kernels.hpp"
#include "gp/sparse.hpp"
#include "hpgmg/multigrid.hpp"
#include "stats/descriptive.hpp"

namespace cl = alperf::cluster;
namespace data = alperf::data;
namespace gp = alperf::gp;
namespace hp = alperf::hpgmg;
namespace la = alperf::la;
namespace st = alperf::stats;
using alperf::stats::Rng;

namespace {

double target(double a, double b) { return std::sin(a) + 0.3 * a - 0.2 * b; }

/// Random 2-D training set from the smooth target.
void makeData(std::size_t n, la::Matrix& x, la::Vector& y, Rng& rng) {
  x = la::Matrix(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniformReal(0.0, 6.0);
    x(i, 1) = rng.uniformReal(0.0, 4.0);
    y[i] = target(x(i, 0), x(i, 1)) + rng.normal(0.0, 0.02);
  }
}

}  // namespace

// ----------------------------------------------------------- sparse GP

TEST(FarthestPointSubset, DistinctAndSpread) {
  Rng rng(1);
  la::Matrix x(50, 2);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.uniformReal(0.0, 1.0);
    x(i, 1) = rng.uniformReal(0.0, 1.0);
  }
  const auto idx = gp::farthestPointSubset(x, 10, rng);
  EXPECT_EQ(idx.size(), 10u);
  std::set<std::size_t> distinct(idx.begin(), idx.end());
  EXPECT_EQ(distinct.size(), 10u);
  // Spread: min pairwise distance of the subset beats a random subset's
  // on average (weak check: subset min distance is positive and sizable).
  double minDist = 1e300;
  for (std::size_t a = 0; a < idx.size(); ++a)
    for (std::size_t b = a + 1; b < idx.size(); ++b)
      minDist = std::min(minDist,
                         la::squaredDistance(x.row(idx[a]), x.row(idx[b])));
  EXPECT_GT(minDist, 0.01);
}

TEST(FarthestPointSubset, HandlesDuplicateRows) {
  la::Matrix x(5, 1);
  for (std::size_t i = 0; i < 5; ++i) x(i, 0) = 1.0;  // all identical
  Rng rng(2);
  const auto idx = gp::farthestPointSubset(x, 4, rng);
  std::set<std::size_t> distinct(idx.begin(), idx.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(SparseGp, ExactWhenInducingEqualsTraining) {
  Rng rng(3);
  la::Matrix x;
  la::Vector y;
  makeData(30, x, y, rng);
  const double noise = 0.01;

  gp::SparseGpConfig scfg;
  scfg.numInducing = 30;
  scfg.noiseVariance = noise;
  gp::SparseGaussianProcess sparse(
      gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}), scfg);
  Rng fitRng(4);
  sparse.fit(x, y, fitRng);

  gp::GpConfig cfg;
  cfg.optimize = false;
  cfg.noise.initial = noise;
  gp::GaussianProcess exact(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                            cfg);
  exact.fit(x, y, fitRng);

  for (double qa : {0.5, 3.0, 5.5})
    for (double qb : {0.5, 2.0, 3.5}) {
      const std::vector<double> q{qa, qb};
      const auto [ms, vs] = sparse.predictOne(q);
      const auto [me, ve] = exact.predictOne(q);
      EXPECT_NEAR(ms, me, 1e-6) << qa << "," << qb;
      EXPECT_NEAR(vs, ve, 1e-6) << qa << "," << qb;
    }
}

TEST(SparseGp, GoodApproximationWithFewInducing) {
  Rng rng(5);
  la::Matrix x;
  la::Vector y;
  makeData(200, x, y, rng);

  gp::SparseGpConfig scfg;
  scfg.numInducing = 40;
  scfg.noiseVariance = 0.01;
  gp::SparseGaussianProcess sparse(
      gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}), scfg);
  Rng fitRng(6);
  sparse.fit(x, y, fitRng);
  EXPECT_EQ(sparse.numInducing(), 40u);

  double err = 0.0;
  int count = 0;
  Rng qRng(7);
  for (int i = 0; i < 50; ++i, ++count) {
    const std::vector<double> q{qRng.uniformReal(0.5, 5.5),
                                qRng.uniformReal(0.5, 3.5)};
    const auto [mean, var] = sparse.predictOne(q);
    err += (mean - target(q[0], q[1])) * (mean - target(q[0], q[1]));
  }
  EXPECT_LT(std::sqrt(err / count), 0.1);
}

TEST(SparseGp, VarianceSmallNearInducingLargeFar) {
  Rng rng(8);
  la::Matrix x;
  la::Vector y;
  makeData(80, x, y, rng);
  gp::SparseGpConfig scfg;
  scfg.numInducing = 20;
  gp::SparseGaussianProcess sparse(
      gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}), scfg);
  Rng fitRng(9);
  sparse.fit(x, y, fitRng);
  const auto [mNear, vNear] =
      sparse.predictOne(std::vector<double>{3.0, 2.0});
  const auto [mFar, vFar] =
      sparse.predictOne(std::vector<double>{30.0, 20.0});
  EXPECT_LT(vNear, vFar);
  EXPECT_GE(vNear, 0.0);
}

TEST(SparseGp, InducingClampedToN) {
  gp::SparseGpConfig scfg;
  scfg.numInducing = 100;
  gp::SparseGaussianProcess sparse(gp::makeSquaredExponential(1.0, 1.0),
                                   scfg);
  la::Matrix x(5, 1);
  la::Vector y(5, 1.0);
  for (std::size_t i = 0; i < 5; ++i) x(i, 0) = static_cast<double>(i);
  Rng rng(10);
  sparse.fit(x, y, rng);
  EXPECT_EQ(sparse.numInducing(), 5u);
}

TEST(SparseGp, Validation) {
  EXPECT_THROW(gp::SparseGaussianProcess(nullptr), std::invalid_argument);
  gp::SparseGpConfig bad;
  bad.noiseVariance = 0.0;
  EXPECT_THROW(
      gp::SparseGaussianProcess(gp::makeSquaredExponential(1.0, 1.0), bad),
      std::invalid_argument);
  gp::SparseGaussianProcess s(gp::makeSquaredExponential(1.0, 1.0));
  EXPECT_THROW(s.predict(la::Matrix(1, 1)), std::invalid_argument);
}

// --------------------------------------------------------------- groupby

TEST(GroupBy, AggregatesPerCombination) {
  data::Table t;
  t.addCategorical("op", {"a", "a", "b", "a", "b"});
  t.addNumeric("np", {1.0, 1.0, 2.0, 1.0, 2.0});
  t.addNumeric("time", {10.0, 12.0, 100.0, 14.0, 120.0});
  const auto g = data::groupByAggregate(t, {"op", "np"}, {"time"});
  ASSERT_EQ(g.numRows(), 2u);
  // Order of first occurrence: (a,1) then (b,2).
  EXPECT_EQ(g.categorical("op")[0], "a");
  EXPECT_DOUBLE_EQ(g.numeric("Count")[0], 3.0);
  EXPECT_DOUBLE_EQ(g.numeric("time_mean")[0], 12.0);
  EXPECT_NEAR(g.numeric("time_sd")[0], 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(g.numeric("time_min")[0], 10.0);
  EXPECT_DOUBLE_EQ(g.numeric("time_max")[0], 14.0);
  EXPECT_EQ(g.categorical("op")[1], "b");
  EXPECT_DOUBLE_EQ(g.numeric("time_mean")[1], 110.0);
}

TEST(GroupBy, SingletonGroupsGetZeroSd) {
  data::Table t;
  t.addNumeric("k", {1.0, 2.0, 3.0});
  t.addNumeric("v", {5.0, 6.0, 7.0});
  const auto g = data::groupByAggregate(t, {"k"}, {"v"});
  EXPECT_EQ(g.numRows(), 3u);
  for (double sd : g.numeric("v_sd")) EXPECT_DOUBLE_EQ(sd, 0.0);
}

TEST(GroupBy, MultipleValueColumns) {
  data::Table t;
  t.addNumeric("k", {1.0, 1.0});
  t.addNumeric("a", {2.0, 4.0});
  t.addNumeric("b", {10.0, 30.0});
  const auto g = data::groupByAggregate(t, {"k"}, {"a", "b"});
  EXPECT_DOUBLE_EQ(g.numeric("a_mean")[0], 3.0);
  EXPECT_DOUBLE_EQ(g.numeric("b_mean")[0], 20.0);
  EXPECT_EQ(g.numCols(), 1u + 1u + 8u);
}

TEST(GroupBy, Validation) {
  data::Table t;
  t.addNumeric("k", {1.0});
  t.addCategorical("c", {"x"});
  EXPECT_THROW(data::groupByAggregate(t, {}, {"k"}), std::invalid_argument);
  EXPECT_THROW(data::groupByAggregate(t, {"k"}, {}), std::invalid_argument);
  EXPECT_THROW(data::groupByAggregate(t, {"k"}, {"c"}),
               std::invalid_argument);
}

// -------------------------------------------------------------- W-cycle

TEST(Multigrid, WcycleConvergesAtLeastAsFastPerCycle) {
  constexpr double kPi = std::numbers::pi;
  const auto reductionWith = [&](int cycleType) {
    hp::MgOptions opt;
    opt.cycleType = cycleType;
    hp::Multigrid mg(hp::StencilType::Poisson2, 15, opt);
    hp::Field b(15), x(15);
    hp::setInterior(b, [&](double px, double py, double pz) {
      return std::sin(kPi * px) * std::sin(2.0 * kPi * py) *
             std::sin(kPi * pz);
    });
    return mg.solve(b, x).meanReduction();
  };
  const double v = reductionWith(1);
  const double w = reductionWith(2);
  EXPECT_LT(w, v + 0.02);
  EXPECT_LT(w, 0.2);
}

TEST(Multigrid, CycleTypeValidation) {
  hp::MgOptions opt;
  opt.cycleType = 0;
  EXPECT_THROW(hp::Multigrid(hp::StencilType::Poisson1, 7, opt),
               std::invalid_argument);
  opt.cycleType = 4;
  EXPECT_THROW(hp::Multigrid(hp::StencilType::Poisson1, 7, opt),
               std::invalid_argument);
}

// ------------------------------------------------- scheduler accounting

TEST(ClusterSim, UtilizationAndWaitAccounting) {
  cl::PerfModelParams params;
  params.noiseSigma = 1e-6;
  params.spikeProbability = 0.0;
  cl::ClusterSim sim(cl::ClusterConfig{}, cl::PerfModel(params), 1);
  // One 64-core job: utilization = 1 for its whole window (the makespan).
  sim.submit({cl::Operator::Poisson1, 1.0e7, 64, 2.4}, 0.0);
  sim.run();
  EXPECT_NEAR(sim.coreUtilization(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(sim.meanQueueWait(), 0.0);
}

TEST(ClusterSim, UtilizationBelowOneWithSerialJobs) {
  cl::PerfModelParams params;
  params.noiseSigma = 1e-6;
  params.spikeProbability = 0.0;
  cl::ClusterSim sim(cl::ClusterConfig{}, cl::PerfModel(params), 2);
  // Two full-machine jobs run back to back; a 1-core job padds the queue.
  sim.submit({cl::Operator::Poisson1, 1.0e7, 64, 2.4}, 0.0);
  sim.submit({cl::Operator::Poisson1, 1.0e7, 64, 2.4}, 0.0);
  sim.submit({cl::Operator::Poisson1, 1.0e5, 1, 2.4}, 0.0);
  sim.run();
  EXPECT_GT(sim.coreUtilization(), 0.3);
  EXPECT_LT(sim.coreUtilization(), 1.0);
  EXPECT_GT(sim.meanQueueWait(), 0.0);
}
