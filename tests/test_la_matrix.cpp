// Unit tests for the dense matrix substrate (la/matrix.hpp).

#include "la/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace la = alperf::la;
using la::Matrix;
using la::Vector;

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructFillsValue) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 1.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerListThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, AdoptDataChecksSize) {
  EXPECT_NO_THROW(Matrix(2, 2, Vector{1, 2, 3, 4}));
  EXPECT_THROW(Matrix(2, 2, Vector{1, 2, 3}), std::invalid_argument);
}

TEST(Matrix, RowViewIsMutable) {
  Matrix m(2, 2);
  auto r = m.row(1);
  r[0] = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST(Matrix, ColCopies) {
  Matrix m{{1, 2}, {3, 4}};
  const Vector c = m.col(1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 4.0);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, FromRows) {
  const Matrix m = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST(Matrix, FromRowsRaggedThrows) {
  EXPECT_THROW(Matrix::fromRows({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, Transposed) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(t.transposed().approxEqual(m, 0.0));
}

TEST(Matrix, AddSubtractScale) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  const Matrix sum = a + b;
  EXPECT_TRUE(sum.approxEqual(Matrix{{5, 5}, {5, 5}}, 1e-15));
  const Matrix diff = a - b;
  EXPECT_TRUE(diff.approxEqual(Matrix{{-3, -1}, {1, 3}}, 1e-15));
  const Matrix scaled = 2.0 * a;
  EXPECT_TRUE(scaled.approxEqual(Matrix{{2, 4}, {6, 8}}, 1e-15));
}

TEST(Matrix, DimensionMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(3, 2);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(Matrix, AddToDiagonal) {
  Matrix m = Matrix::identity(3);
  m.addToDiagonal(2.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(m(i, i), 3.0);
  Matrix rect(2, 3);
  EXPECT_THROW(rect.addToDiagonal(1.0), std::invalid_argument);
}

TEST(Matrix, MaxAbsAndFrobenius) {
  Matrix m{{3, -4}, {0, 0}};
  EXPECT_DOUBLE_EQ(m.maxAbs(), 4.0);
  EXPECT_DOUBLE_EQ(m.frobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(Matrix().maxAbs(), 0.0);
}

TEST(Matmul, AgainstHandComputed) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix c = la::matmul(a, b);
  EXPECT_TRUE(c.approxEqual(Matrix{{19, 22}, {43, 50}}, 1e-12));
}

TEST(Matmul, IdentityIsNeutral) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_TRUE(la::matmul(a, Matrix::identity(3)).approxEqual(a, 1e-15));
  EXPECT_TRUE(la::matmul(Matrix::identity(2), a).approxEqual(a, 1e-15));
}

TEST(Matmul, MismatchThrows) {
  EXPECT_THROW(la::matmul(Matrix(2, 3), Matrix(2, 3)),
               std::invalid_argument);
}

TEST(Matmul, RectangularShapes) {
  Matrix a(2, 4, 1.0);
  Matrix b(4, 3, 2.0);
  const Matrix c = la::matmul(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_DOUBLE_EQ(c(1, 2), 8.0);
}

TEST(Gram, MatchesExplicitProduct) {
  Matrix a{{1, 2, 0}, {3, -1, 2}, {0, 4, 1}, {2, 2, 2}};
  const Matrix g = la::gram(a);
  const Matrix ref = la::matmul(a.transposed(), a);
  EXPECT_TRUE(g.approxEqual(ref, 1e-12));
}

TEST(Matvec, AgainstHandComputed) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const Vector y = la::matvec(a, Vector{1.0, -1.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(Matvec, TransposedMatchesExplicit) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const Vector x{1.0, 2.0, 3.0};
  const Vector y = la::matvecTransposed(a, x);
  const Vector ref = la::matvec(a.transposed(), x);
  ASSERT_EQ(y.size(), ref.size());
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_DOUBLE_EQ(y[i], ref[i]);
}

TEST(VectorOps, DotAndNorms) {
  const Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(la::dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(la::norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(la::normInf(Vector{-7.0, 2.0}), 7.0);
}

TEST(VectorOps, Axpy) {
  const Vector x{1.0, 2.0};
  Vector y{10.0, 20.0};
  la::axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOps, SubtractAndSquaredDistance) {
  const Vector a{1.0, 5.0};
  const Vector b{4.0, 1.0};
  const Vector d = la::subtract(a, b);
  EXPECT_DOUBLE_EQ(d[0], -3.0);
  EXPECT_DOUBLE_EQ(d[1], 4.0);
  EXPECT_DOUBLE_EQ(la::squaredDistance(a, b), 25.0);
}

TEST(Matrix, ToStringContainsElements) {
  Matrix m{{1.25, 2.0}};
  const std::string s = m.toString();
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

// Property sweep: (A·B)ᵀ == Bᵀ·Aᵀ for a range of shapes.
class MatmulTransposeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulTransposeProperty, TransposeOfProduct) {
  const auto [m, k, n] = GetParam();
  Matrix a(m, k);
  Matrix b(k, n);
  // Deterministic pseudo-pattern.
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      a(i, j) = std::sin(static_cast<double>(i * 7 + j * 3 + 1));
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j)
      b(i, j) = std::cos(static_cast<double>(i * 5 + j * 2 + 1));
  const Matrix lhs = la::matmul(a, b).transposed();
  const Matrix rhs = la::matmul(b.transposed(), a.transposed());
  EXPECT_TRUE(lhs.approxEqual(rhs, 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulTransposeProperty,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{2, 3, 4},
                                           std::tuple{5, 1, 5},
                                           std::tuple{7, 7, 7},
                                           std::tuple{1, 9, 2},
                                           std::tuple{10, 4, 6}));

TEST(Matrix, IndexOutOfRangeAsserts) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::logic_error);
  EXPECT_THROW(m(0, 2), std::logic_error);
  EXPECT_THROW(m.row(5), std::logic_error);
}
