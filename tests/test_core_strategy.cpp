// Tests for the AL selection strategies (core/strategy.hpp).

#include "core/strategy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace gp = alperf::gp;
namespace la = alperf::la;
using alperf::stats::Rng;

namespace {

/// 1-D problem on [0, 10]: y = 0.3·x (interpreted as log-cost), unit costs.
al::RegressionProblem lineProblem(const std::vector<double>& xs) {
  al::RegressionProblem p;
  p.x = la::Matrix(xs.size(), 1);
  p.y.resize(xs.size());
  p.cost.assign(xs.size(), 1.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    p.x(i, 0) = xs[i];
    p.y[i] = 0.3 * xs[i];
  }
  p.featureNames = {"x"};
  p.responseName = "y";
  return p;
}

gp::GaussianProcess fitGp(const al::RegressionProblem& problem,
                          const std::vector<std::size_t>& trainRows,
                          Rng& rng) {
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.initial = 1e-4;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  la::Matrix x(trainRows.size(), 1);
  la::Vector y(trainRows.size());
  for (std::size_t i = 0; i < trainRows.size(); ++i) {
    x(i, 0) = problem.x(trainRows[i], 0);
    y[i] = problem.y[trainRows[i]];
  }
  g.fit(std::move(x), std::move(y), rng);
  return g;
}

}  // namespace

TEST(VarianceReduction, PicksFarthestFromTrainingData) {
  // Train at {0, 1}; candidates at {0.5, 2, 9} → 9 has the highest σ.
  const auto problem = lineProblem({0.0, 1.0, 0.5, 2.0, 9.0});
  Rng rng(1);
  const auto g = fitGp(problem, {0, 1}, rng);
  const std::vector<std::size_t> cand{2, 3, 4};
  al::VarianceReduction vr;
  const al::SelectionContext ctx{g, problem, cand, rng};
  EXPECT_EQ(vr.select(ctx), 2u);
  const auto s = vr.scores(ctx);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_GT(s[2], s[1]);
  EXPECT_GT(s[1], s[0]);
}

TEST(CostEfficiency, PrefersCheaperAtEqualUncertainty) {
  // Candidates symmetric around the training cluster (equal σ) but with
  // different predicted log-cost: the cheaper (lower-mean) one wins.
  // Train at {4,5,6} on y = 0.3x; candidates at 1 and 9 are equidistant
  // from the data, so σ is ~equal but µ(1) < µ(9).
  const auto problem = lineProblem({4.0, 5.0, 6.0, 1.0, 9.0});
  Rng rng(2);
  const auto g = fitGp(problem, {0, 1, 2}, rng);
  const std::vector<std::size_t> cand{3, 4};
  al::CostEfficiency ce;
  const al::SelectionContext ctx{g, problem, cand, rng};
  EXPECT_EQ(ce.select(ctx), 0u);  // position of row 3 (x = 1, cheaper)

  // VarianceReduction is indifferent (ties broken by order), confirming
  // the preference comes from the cost term.
  al::VarianceReduction vr;
  const auto sv = vr.scores(ctx);
  EXPECT_NEAR(sv[0], sv[1], 0.25 * std::max(sv[0], sv[1]));
}

TEST(CostEfficiency, MatchesPaperEquation14) {
  const auto problem = lineProblem({0.0, 2.0, 5.0, 8.0});
  Rng rng(3);
  const auto g = fitGp(problem, {0, 1}, rng);
  const std::vector<std::size_t> cand{2, 3};
  al::CostEfficiency ce;
  const al::SelectionContext ctx{g, problem, cand, rng};
  const auto s = ce.scores(ctx);
  for (std::size_t i = 0; i < cand.size(); ++i) {
    const auto [mu, var] = g.predictOne(problem.x.row(cand[i]));
    EXPECT_NEAR(s[i], std::sqrt(var) - mu, 1e-10);
  }
}

TEST(CostWeightedVariance, DividesByLinearCost) {
  const auto problem = lineProblem({0.0, 2.0, 5.0, 8.0});
  Rng rng(4);
  const auto g = fitGp(problem, {0, 1}, rng);
  const std::vector<std::size_t> cand{2, 3};
  al::CostWeightedVariance cw;
  const al::SelectionContext ctx{g, problem, cand, rng};
  const auto s = cw.scores(ctx);
  for (std::size_t i = 0; i < cand.size(); ++i) {
    const auto [mu, var] = g.predictOne(problem.x.row(cand[i]));
    EXPECT_NEAR(s[i], std::sqrt(var) / std::pow(10.0, mu), 1e-10);
  }
}

TEST(RandomSelection, UniformOverCandidates) {
  const auto problem = lineProblem({0.0, 1.0, 2.0, 3.0, 4.0});
  Rng rng(5);
  const auto g = fitGp(problem, {0}, rng);
  const std::vector<std::size_t> cand{1, 2, 3, 4};
  al::RandomSelection rs;
  int counts[4] = {};
  for (int i = 0; i < 4000; ++i) {
    const al::SelectionContext ctx{g, problem, cand, rng};
    ++counts[rs.select(ctx)];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(Emcm, ProducesScoresAndValidPick) {
  const auto problem = lineProblem({0.0, 1.0, 2.0, 5.0, 9.0});
  Rng rng(6);
  const auto g = fitGp(problem, {0, 1, 2}, rng);
  const std::vector<std::size_t> cand{3, 4};
  al::Emcm emcm(4);
  const al::SelectionContext ctx{g, problem, cand, rng};
  const auto s = emcm.scores(ctx);
  ASSERT_EQ(s.size(), 2u);
  for (double v : s) EXPECT_GE(v, 0.0);
  EXPECT_LT(emcm.select(ctx), 2u);
}

TEST(Emcm, ValidatesEnsembleSize) {
  EXPECT_THROW(al::Emcm(1), std::invalid_argument);
}

TEST(ScoredStrategy, SelectBatchIsTopK) {
  // Enough training data to pin the GP down; candidates at increasing
  // distance from the training cluster.
  const auto problem =
      lineProblem({0.0, 1.0, 2.0, 3.0, 3.5, 6.0, 9.0});
  Rng rng(7);
  const auto g = fitGp(problem, {0, 1, 2, 3}, rng);
  const std::vector<std::size_t> cand{4, 5, 6};  // x = 3.5, 6, 9
  al::VarianceReduction vr;
  const al::SelectionContext ctx{g, problem, cand, rng};
  // Batch order must match the strategy's own score ranking.
  const auto scores = vr.scores(ctx);
  const auto batch = vr.selectBatch(ctx, 2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_GE(scores[batch[0]], scores[batch[1]]);
  for (std::size_t pos = 0; pos < scores.size(); ++pos)
    EXPECT_LE(scores[pos], scores[batch[0]] + 1e-15);
  // And with a well-determined GP the farthest point ranks first.
  EXPECT_EQ(batch[0], 2u);
  EXPECT_EQ(batch[1], 1u);
}

TEST(Strategy, SelectBatchValidation) {
  const auto problem = lineProblem({0.0, 1.0, 2.0});
  Rng rng(8);
  const auto g = fitGp(problem, {0}, rng);
  const std::vector<std::size_t> cand{1, 2};
  al::VarianceReduction vr;
  const al::SelectionContext ctx{g, problem, cand, rng};
  EXPECT_THROW(vr.selectBatch(ctx, 0), std::invalid_argument);
  EXPECT_THROW(vr.selectBatch(ctx, 3), std::invalid_argument);
}

TEST(DefaultSelectBatch, DistinctRemappedPositions) {
  // RandomSelection uses Strategy's default batch implementation.
  const auto problem = lineProblem({0.0, 1.0, 2.0, 3.0, 4.0, 5.0});
  Rng rng(9);
  const auto g = fitGp(problem, {0}, rng);
  const std::vector<std::size_t> cand{1, 2, 3, 4, 5};
  al::RandomSelection rs;
  const al::SelectionContext ctx{g, problem, cand, rng};
  const auto batch = rs.selectBatch(ctx, 4);
  ASSERT_EQ(batch.size(), 4u);
  std::set<std::size_t> distinct(batch.begin(), batch.end());
  EXPECT_EQ(distinct.size(), 4u);
  for (auto pos : batch) EXPECT_LT(pos, cand.size());
}

TEST(FantasyBatch, SpreadsAcrossSpace) {
  // Candidates form two far-apart clusters; a fantasy batch of 2 should
  // take one from each cluster, while plain top-σ takes both from the
  // farther cluster.
  const auto problem =
      lineProblem({5.0, 20.0, 20.3, 20.6, -10.0, -10.3, -10.6});
  Rng rng(10);
  const auto g = fitGp(problem, {0}, rng);
  const std::vector<std::size_t> cand{1, 2, 3, 4, 5, 6};
  al::FantasyBatch fb;
  const al::SelectionContext ctx{g, problem, cand, rng};
  const auto batch = fb.selectBatch(ctx, 2);
  ASSERT_EQ(batch.size(), 2u);
  const double x0 = problem.x(cand[batch[0]], 0);
  const double x1 = problem.x(cand[batch[1]], 0);
  // One positive-cluster point and one negative-cluster point.
  EXPECT_LT(x0 * x1, 0.0) << "picked " << x0 << " and " << x1;

  al::VarianceReduction vr;
  const al::SelectionContext ctx2{g, problem, cand, rng};
  const auto naive = vr.selectBatch(ctx2, 2);
  const double n0 = problem.x(cand[naive[0]], 0);
  const double n1 = problem.x(cand[naive[1]], 0);
  EXPECT_GT(n0 * n1, 0.0) << "naive picked " << n0 << " and " << n1;
}

TEST(FantasyBatch, SingleSelectIsVarianceReduction) {
  const auto problem = lineProblem({0.0, 1.0, 0.5, 9.0});
  Rng rng(11);
  const auto g = fitGp(problem, {0, 1}, rng);
  const std::vector<std::size_t> cand{2, 3};
  al::FantasyBatch fb;
  al::VarianceReduction vr;
  const al::SelectionContext ctx{g, problem, cand, rng};
  EXPECT_EQ(fb.select(ctx), vr.select(ctx));
}

TEST(StrategyNames, AreStable) {
  EXPECT_EQ(al::VarianceReduction().name(), "variance_reduction");
  EXPECT_EQ(al::CostEfficiency().name(), "cost_efficiency");
  EXPECT_EQ(al::CostWeightedVariance().name(), "cost_weighted_variance");
  EXPECT_EQ(al::RandomSelection().name(), "random");
  EXPECT_EQ(al::Emcm().name(), "emcm");
  EXPECT_EQ(al::FantasyBatch().name(), "fantasy_batch");
}

TEST(Problem, ValidateCatchesMismatches) {
  al::RegressionProblem p;
  p.x = la::Matrix(2, 1);
  p.y = {1.0};
  p.cost = {1.0, 1.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.y = {1.0, 2.0};
  p.cost = {1.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.cost = {1.0, 1.0};
  EXPECT_NO_THROW(p.validate());
}
