// Tests for campaign archival/replay (cluster/records.hpp) and the
// Kolmogorov–Smirnov validation machinery, including a distributional
// check on the simulator's runtime noise.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "cluster/dataset.hpp"
#include "cluster/records.hpp"
#include "data/csv.hpp"
#include "stats/descriptive.hpp"

namespace cl = alperf::cluster;
namespace data = alperf::data;
namespace st = alperf::stats;
using alperf::stats::Rng;

namespace {

std::vector<cl::JobRecord> sampleRecords() {
  std::vector<cl::JobRecord> recs(3);
  for (std::size_t i = 0; i < 3; ++i) {
    recs[i].id = i;
    recs[i].request = {cl::Operator::Poisson2, 1e6 * (i + 1),
                       static_cast<int>(4 << i), 1.2 + 0.3 * i};
    recs[i].submitTime = i * 10.0;
    recs[i].startTime = i * 10.0 + 1.0;
    recs[i].endTime = i * 10.0 + 61.0;
    recs[i].runtimeSeconds = 20.0 + i;
    recs[i].nodesUsed = 1;
    recs[i].coresUsed = static_cast<int>(4 << i);
    recs[i].energyJoules = 1e4 + i;
    recs[i].energyValid = i != 1;
    recs[i].attempts = 1 + static_cast<int>(i);
    recs[i].wastedSeconds = 5.0 * i;
    recs[i].failed = i == 2;
  }
  return recs;
}

}  // namespace

TEST(RecordsToTable, AllColumnsPresent) {
  const auto recs = sampleRecords();
  const auto t = cl::recordsToTable(recs, true);
  EXPECT_EQ(t.numRows(), 3u);
  for (const char* col :
       {"JobId", "GlobalSize", "NP", "FreqGHz", "RuntimeS", "SubmitTime",
        "StartTime", "EndTime", "QueueWaitS", "NodesUsed", "CoresUsed",
        "PowerSamples", "EnergyValid", "Attempts", "WastedSeconds",
        "Failed", "EnergyJ"})
    EXPECT_TRUE(t.hasColumn(col)) << col;
  EXPECT_EQ(t.categorical("Operator")[0], "poisson2");
  EXPECT_DOUBLE_EQ(t.numeric("Attempts")[2], 3.0);
  EXPECT_DOUBLE_EQ(t.numeric("Failed")[2], 1.0);
  EXPECT_DOUBLE_EQ(t.numeric("WastedSeconds")[1], 5.0);
  // Without energy the EnergyJ column is absent.
  EXPECT_FALSE(cl::recordsToTable(recs, false).hasColumn("EnergyJ"));
}

TEST(RequestsFromTable, RoundTrip) {
  const auto recs = sampleRecords();
  const auto t = cl::recordsToTable(recs, false);
  const auto reqs = cl::requestsFromTable(t);
  ASSERT_EQ(reqs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(reqs[i].op, recs[i].request.op);
    EXPECT_DOUBLE_EQ(reqs[i].globalSize, recs[i].request.globalSize);
    EXPECT_EQ(reqs[i].np, recs[i].request.np);
    EXPECT_DOUBLE_EQ(reqs[i].freqGhz, recs[i].request.freqGhz);
  }
  const auto times = cl::submitTimesFromTable(t);
  EXPECT_DOUBLE_EQ(times[1], 10.0);
}

TEST(RequestsFromTable, CsvRoundTripAndReplay) {
  // Archive a campaign to CSV, read it back, replay it through a fresh
  // simulator: the workload shapes must match.
  const auto recs = sampleRecords();
  std::ostringstream out;
  data::writeCsv(cl::recordsToTable(recs, false), out);
  std::istringstream in(out.str());
  const auto back = data::readCsv(in);
  const auto reqs = cl::requestsFromTable(back);
  const auto times = cl::submitTimesFromTable(back);

  cl::PerfModelParams quiet;
  quiet.noiseSigma = 1e-6;
  quiet.spikeProbability = 0.0;
  cl::ClusterSim sim(cl::ClusterConfig{}, cl::PerfModel(quiet), 1);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    sim.submit(reqs[i], times[i]);
  sim.run();
  EXPECT_EQ(sim.records().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(sim.records()[i].request.np, recs[i].request.np);
}

TEST(RequestsFromTable, Validation) {
  data::Table empty;
  EXPECT_THROW(cl::requestsFromTable(empty), std::invalid_argument);
  data::Table bad;
  bad.addCategorical("Operator", {"poisson1"});
  bad.addNumeric("GlobalSize", {1e6});
  bad.addNumeric("NP", {2.5});  // non-integer NP
  bad.addNumeric("FreqGHz", {2.4});
  EXPECT_THROW(cl::requestsFromTable(bad), std::invalid_argument);
}

TEST(SubmitTimes, StaggerFallback) {
  data::Table t;
  t.addNumeric("GlobalSize", {1.0, 2.0, 3.0});
  const auto times = cl::submitTimesFromTable(t, 2.5);
  EXPECT_DOUBLE_EQ(times[2], 5.0);
  EXPECT_THROW(cl::submitTimesFromTable(t, -1.0), std::invalid_argument);
}

// --------------------------------------------------------------- KS test

TEST(KsStatistic, SmallForMatchingDistribution) {
  Rng rng(1);
  std::vector<double> v(2000);
  for (auto& x : v) x = rng.normal();
  const double d = st::ksStatistic(v, st::standardNormalCdf);
  // 95% critical value ≈ 1.36/sqrt(n) ≈ 0.030.
  EXPECT_LT(d, 0.04);
}

TEST(KsStatistic, LargeForMismatchedDistribution) {
  Rng rng(2);
  std::vector<double> v(2000);
  for (auto& x : v) x = rng.uniformReal(-1.0, 1.0);
  const double d = st::ksStatistic(v, st::standardNormalCdf);
  EXPECT_GT(d, 0.1);
}

TEST(KsStatistic, ExactForDegenerateSample) {
  // Single point at the median: D = 0.5.
  const std::vector<double> v{0.0};
  EXPECT_NEAR(st::ksStatistic(v, st::standardNormalCdf), 0.5, 1e-12);
}

TEST(KsStatistic, Validation) {
  EXPECT_THROW(st::ksStatistic(std::vector<double>{}, st::standardNormalCdf),
               std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW(st::ksStatistic(v, nullptr), std::invalid_argument);
  EXPECT_THROW(st::ksStatistic(v, [](double) { return 2.0; }),
               std::invalid_argument);
}

TEST(KsStatistic, SimulatorRuntimeNoiseIsLognormal) {
  // Sample one job repeatedly; the log residuals around the model mean
  // should pass a KS test against N(0, noiseSigma) once spikes are off.
  cl::PerfModelParams params;
  params.spikeProbability = 0.0;
  const cl::PerfModel model(params);
  const cl::JobRequest req{cl::Operator::Poisson1, 1.0e7, 16, 2.1};
  const double mean = model.meanRuntime(req);
  Rng rng(3);
  std::vector<double> z(3000);
  for (auto& x : z)
    x = std::log(model.sampleRuntime(req, rng) / mean) / params.noiseSigma;
  EXPECT_LT(st::ksStatistic(z, st::standardNormalCdf), 0.035);
}
