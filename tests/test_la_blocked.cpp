// Property tests for the blocked dense kernels (la/blas.hpp): every blocked
// kernel is pinned against the retained seed reference implementation on
// random inputs, including sizes above the 64-edge tile, non-multiples of
// it, and the kernel-selection flag plumbing through Cholesky/matmul/gram.

#include "la/blas.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/cholesky.hpp"
#include "stats/rng.hpp"

namespace la = alperf::la;
using alperf::stats::Rng;
using la::Matrix;
using la::Vector;

namespace {

Matrix randomMatrix(std::size_t rows, std::size_t cols, unsigned seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      m(i, j) = rng.uniformReal(-1.0, 1.0);
  return m;
}

/// Random symmetric diagonally dominant SPD matrix.
Matrix randomSpd(std::size_t n, unsigned seed) {
  Rng rng(seed);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double v = rng.uniformReal(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
    a(i, i) = static_cast<double>(n) + 1.0;
  }
  return a;
}

double maxRelError(const Matrix& got, const Matrix& want) {
  EXPECT_EQ(got.rows(), want.rows());
  EXPECT_EQ(got.cols(), want.cols());
  const double scale = want.maxAbs() + 1.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < got.rows(); ++i)
    for (std::size_t j = 0; j < got.cols(); ++j)
      worst = std::max(worst, std::abs(got(i, j) - want(i, j)) / scale);
  return worst;
}

/// Restores the kernel selection after each test body.
struct KernelGuard {
  bool prev = la::blockedKernelsEnabled();
  ~KernelGuard() { la::setBlockedKernels(prev); }
};

}  // namespace

TEST(BlockedKernels, GemmMatchesReferenceAcrossShapes) {
  // Includes > 1 tile, non-multiples of the tile edge, and thin shapes.
  const std::size_t shapes[][3] = {
      {3, 4, 5},   {64, 64, 64}, {96, 130, 57},
      {257, 96, 33}, {1, 200, 1}, {130, 1, 130}};
  for (const auto& s : shapes) {
    const Matrix a = randomMatrix(s[0], s[1], 1);
    const Matrix b = randomMatrix(s[1], s[2], 2);
    const Matrix got = la::matmulBlocked(a, b);
    const Matrix want = la::matmulReference(a, b);
    // Same per-element ascending-k accumulation order → bitwise equal.
    for (std::size_t i = 0; i < got.rows(); ++i)
      for (std::size_t j = 0; j < got.cols(); ++j)
        ASSERT_EQ(got(i, j), want(i, j))
            << "shape " << s[0] << "x" << s[1] << "x" << s[2] << " at ("
            << i << "," << j << ")";
  }
}

TEST(BlockedKernels, GramMatchesReference) {
  for (const std::size_t n : {5ul, 64ul, 96ul, 257ul}) {
    const Matrix a = randomMatrix(n, 130, static_cast<unsigned>(n));
    const Matrix got = la::gramBlocked(a.transposed());
    const Matrix want = la::gramReference(a.transposed());
    EXPECT_LE(maxRelError(got, want), 1e-12) << "n=" << n;
    // Exact symmetry by construction (mirrored tiles).
    for (std::size_t i = 0; i < got.rows(); ++i)
      for (std::size_t j = 0; j < i; ++j)
        ASSERT_EQ(got(i, j), got(j, i));
  }
}

TEST(BlockedKernels, SyrkUpdateAccumulates) {
  const Matrix a = randomMatrix(70, 90, 3);
  Matrix c = randomSpd(70, 4);
  const Matrix before = c;
  la::syrkUpdate(c, a, -1.0);
  const Matrix want = before - la::matmulReference(a, a.transposed());
  EXPECT_LE(maxRelError(c, want), 1e-12);
}

TEST(BlockedKernels, CholeskyMatchesReferenceProperty) {
  for (const std::size_t n : {8ul, 64ul, 96ul, 130ul, 257ul}) {
    const Matrix spd = randomSpd(n, static_cast<unsigned>(n) + 10);
    Matrix blocked = spd;
    Matrix reference = spd;
    ASSERT_TRUE(la::choleskyInPlaceBlocked(blocked)) << "n=" << n;
    ASSERT_TRUE(la::choleskyInPlaceReference(reference)) << "n=" << n;
    EXPECT_LE(maxRelError(blocked, reference), 1e-12) << "n=" << n;
    // Strict upper triangle must be exactly zero.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        ASSERT_EQ(blocked(i, j), 0.0);
  }
}

TEST(BlockedKernels, CholeskyReconstructs) {
  const Matrix spd = randomSpd(200, 21);
  Matrix l = spd;
  ASSERT_TRUE(la::choleskyInPlaceBlocked(l));
  const Matrix recon = la::matmulBlocked(l, l.transposed());
  EXPECT_LE(maxRelError(recon, spd), 1e-12);
}

TEST(BlockedKernels, CholeskyRejectsNonSpd) {
  Matrix notSpd = randomSpd(100, 22);
  notSpd(80, 80) = -5.0;  // forces a negative pivot in a later panel
  Matrix work = notSpd;
  EXPECT_FALSE(la::choleskyInPlaceBlocked(work));
}

TEST(BlockedKernels, TrsmSolvesLowerAndUpper) {
  const std::size_t n = 150;
  Matrix l = randomSpd(n, 23);
  ASSERT_TRUE(la::choleskyInPlaceBlocked(l));
  const Matrix xTrue = randomMatrix(n, 70, 24);

  Matrix b = la::matmulReference(l, xTrue);
  la::trsmLowerLeft(l, b);
  EXPECT_LE(maxRelError(b, xTrue), 1e-10);

  Matrix bu = la::matmulReference(l.transposed(), xTrue);
  la::trsmUpperLeft(l, bu);
  EXPECT_LE(maxRelError(bu, xTrue), 1e-10);
}

TEST(BlockedKernels, MultiRhsSolveMatchesPerColumn) {
  const std::size_t n = 130;
  const Matrix spd = randomSpd(n, 25);
  const Matrix b = randomMatrix(n, 37, 26);
  KernelGuard guard;

  la::setBlockedKernels(true);
  const la::Cholesky blocked(spd);
  const Matrix gotX = blocked.solve(b);

  la::setBlockedKernels(false);
  const la::Cholesky reference(spd);
  const Matrix wantX = reference.solve(b);

  EXPECT_LE(maxRelError(gotX, wantX), 1e-10);
}

TEST(BlockedKernels, VectorSolvesMatchReference) {
  const std::size_t n = 97;
  const Matrix spd = randomSpd(n, 27);
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = std::sin(static_cast<double>(i));
  KernelGuard guard;

  la::setBlockedKernels(true);
  const la::Cholesky blocked(spd);
  const Vector xb = blocked.solve(b);
  const Vector lb = blocked.solveLower(b);
  const Vector ub = blocked.solveUpper(b);

  la::setBlockedKernels(false);
  const la::Cholesky reference(spd);
  const Vector xr = reference.solve(b);
  const Vector lr = reference.solveLower(b);
  const Vector ur = reference.solveUpper(b);

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(xb[i], xr[i], 1e-10 * (std::abs(xr[i]) + 1.0));
    EXPECT_NEAR(lb[i], lr[i], 1e-10 * (std::abs(lr[i]) + 1.0));
    EXPECT_NEAR(ub[i], ur[i], 1e-10 * (std::abs(ur[i]) + 1.0));
  }
}

TEST(BlockedKernels, DispatchFlagSelectsKernels) {
  KernelGuard guard;
  const Matrix a = randomMatrix(70, 70, 28);
  const Matrix b = randomMatrix(70, 70, 29);
  la::setBlockedKernels(false);
  const Matrix viaReference = la::matmul(a, b);
  la::setBlockedKernels(true);
  const Matrix viaBlocked = la::matmul(a, b);
  // gemm keeps the reference accumulation order exactly.
  for (std::size_t i = 0; i < 70; ++i)
    for (std::size_t j = 0; j < 70; ++j)
      ASSERT_EQ(viaBlocked(i, j), viaReference(i, j));
}

TEST(BlockedKernels, DotUnrolledMatchesNaive) {
  Rng rng(30);
  for (const std::size_t n : {0ul, 1ul, 3ul, 4ul, 7ul, 64ul, 1001ul}) {
    Vector a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.uniformReal(-1.0, 1.0);
      b[i] = rng.uniformReal(-1.0, 1.0);
    }
    double naive = 0.0;
    for (std::size_t i = 0; i < n; ++i) naive += a[i] * b[i];
    EXPECT_NEAR(la::dotUnrolled(a.data(), b.data(), n), naive,
                1e-13 * (std::abs(naive) + 1.0));
  }
}
