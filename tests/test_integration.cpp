// End-to-end integration tests: cluster dataset generation → problem
// construction → GP + active learning, reproducing the paper's pipeline
// at reduced scale; plus an online loop driving the real mini-HPGMG
// solver.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/dataset.hpp"
#include "core/batch.hpp"
#include "core/tradeoff.hpp"
#include "gp/kernels.hpp"
#include "hpgmg/benchmark.hpp"
#include "stats/descriptive.hpp"

namespace al = alperf::al;
namespace cl = alperf::cluster;
namespace gp = alperf::gp;
namespace la = alperf::la;
namespace st = alperf::stats;
using alperf::stats::Rng;

namespace {

/// Small generated dataset shared across tests in this binary.
const cl::GeneratedDataset& dataset() {
  static const cl::GeneratedDataset ds = [] {
    cl::DatasetConfig cfg;
    cfg.sizes = {1728.0,    13824.0,    110592.0,   884736.0,
                 7.077888e6, 5.6623104e7, 4.52984832e8};
    cfg.npLevels = {1, 4, 16, 32, 64};
    cfg.freqLevels = {1.2, 1.8, 2.4};
    cfg.targetJobs = 900;
    cfg.seed = 11;
    return cl::DatasetGenerator(cfg).generate();
  }();
  return ds;
}

/// The paper's Fig. 6 style subset: poisson1, NP = 32; features
/// (log size, freq); response log runtime; cost = runtime · cores.
al::RegressionProblem fig6Problem() {
  const auto& perf = dataset().performance;
  auto sub = perf.filter([&perf](std::size_t i) {
    return perf.categorical("Operator")[i] == "poisson1" &&
           perf.numeric("NP")[i] == 32.0;
  });
  std::vector<double> cost(sub.numRows());
  for (std::size_t i = 0; i < sub.numRows(); ++i)
    cost[i] = sub.numeric("RuntimeS")[i] * sub.numeric("CoresUsed")[i];
  sub.addNumeric("CostCoreS", std::move(cost));
  return al::makeProblem(sub, {"GlobalSize", "FreqGHz"}, "RuntimeS",
                         "CostCoreS", {"GlobalSize", "RuntimeS"});
}

gp::GaussianProcess prototype() {
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-4;
  cfg.optStop.maxIterations = 40;
  return gp::GaussianProcess(
      gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}), cfg);
}

}  // namespace

TEST(Integration, GpFitsGeneratedRuntimeSurface) {
  const auto problem = fig6Problem();
  ASSERT_GE(problem.size(), 45u);
  // Fit on ~70%, test on the rest.
  Rng rng(1);
  const std::size_t nTrain = problem.size() * 7 / 10;
  la::Matrix trainX(nTrain, 2);
  la::Vector trainY(nTrain);
  for (std::size_t i = 0; i < nTrain; ++i) {
    const auto row = problem.x.row(i);
    std::copy(row.begin(), row.end(), trainX.row(i).begin());
    trainY[i] = problem.y[i];
  }
  auto g = prototype();
  g.fit(std::move(trainX), std::move(trainY), rng);

  std::vector<double> pred, truth;
  for (std::size_t i = nTrain; i < problem.size(); ++i) {
    const auto [m, v] = g.predictOne(problem.x.row(i));
    pred.push_back(m);
    truth.push_back(problem.y[i]);
  }
  // Log-runtime spans several decades; RMSE below 0.15 decades means the
  // surface is learned well.
  EXPECT_LT(st::rmse(pred, truth), 0.15);
}

TEST(Integration, VarianceReductionExploresEdgesFirst) {
  // Paper Fig. 6: AL first visits the domain edges ("star-like pattern").
  const auto problem = fig6Problem();
  al::AlConfig cfg;
  cfg.maxIterations = 10;
  al::ActiveLearner learner(problem, prototype(),
                            std::make_unique<al::VarianceReduction>(), cfg);
  Rng rng(2);
  const auto result = learner.run(rng);

  // Domain box over the active set.
  double loS = 1e300, hiS = -1e300, loF = 1e300, hiF = -1e300;
  for (std::size_t r : result.partition.active) {
    loS = std::min(loS, problem.x(r, 0));
    hiS = std::max(hiS, problem.x(r, 0));
    loF = std::min(loF, problem.x(r, 1));
    hiF = std::max(hiF, problem.x(r, 1));
  }
  int edgePicks = 0;
  for (const auto& rec : result.history) {
    const double s = problem.x(rec.chosenRow, 0);
    const double f = problem.x(rec.chosenRow, 1);
    const bool sEdge = (s - loS) < 0.2 * (hiS - loS) ||
                       (hiS - s) < 0.2 * (hiS - loS);
    const bool fEdge = (f - loF) < 0.2 * (hiF - loF) ||
                       (hiF - f) < 0.2 * (hiF - loF);
    if (sEdge || fEdge) ++edgePicks;
  }
  // At least 7 of the first 10 picks touch an edge band.
  EXPECT_GE(edgePicks, 7);
}

TEST(Integration, NoiseBoundPreventsSigmaCollapse) {
  // Paper Fig. 7: with σ_n² >= 1e-8 the pick-σ can collapse early; with
  // the raised bound it stays healthy.
  const auto problem = fig6Problem();
  al::AlConfig cfg;
  cfg.maxIterations = 12;

  const auto runWith = [&](double noiseLo) {
    gp::GpConfig gcfg;
    gcfg.nRestarts = 1;
    gcfg.noise.lo = noiseLo;
    gcfg.noise.initial = std::max(1e-2, noiseLo);
    gcfg.optStop.maxIterations = 40;
    gp::GaussianProcess proto(
        gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}), gcfg);
    al::ActiveLearner learner(problem, proto,
                              std::make_unique<al::VarianceReduction>(),
                              cfg);
    Rng rng(3);  // same seed → same partition
    return learner.run(rng);
  };

  const auto loose = runWith(1e-8);
  const auto tight = runWith(1e-1);
  ASSERT_EQ(loose.history.size(), tight.history.size());
  // The raised bound keeps fitted noise at/above the floor.
  for (const auto& rec : tight.history)
    EXPECT_GE(rec.noiseVariance, 1e-1 - 1e-9);
  // And its AMSD never collapses below the noise-induced floor, while the
  // loose bound admits much smaller values at some iteration.
  double minLoose = 1e300, minTight = 1e300;
  for (std::size_t i = 0; i < loose.history.size(); ++i) {
    minLoose = std::min(minLoose, loose.history[i].amsd);
    minTight = std::min(minTight, tight.history[i].amsd);
  }
  EXPECT_LT(minLoose, minTight);
}

TEST(Integration, PairedStrategiesCostEfficiencySpendsLess) {
  // Fig. 8 mechanism: Cost Efficiency accumulates cost far more slowly
  // for the same iteration count.
  const auto problem = fig6Problem();
  al::BatchConfig cfg;
  cfg.replicates = 3;
  cfg.al.maxIterations = 15;
  cfg.seed = 4;
  const auto results = al::runPairedBatch(
      problem, prototype(),
      {[] { return std::make_unique<al::VarianceReduction>(); },
       [] { return std::make_unique<al::CostEfficiency>(); }},
      cfg);
  const auto vrCost =
      results[0].meanSeries(&al::IterationRecord::cumulativeCost);
  const auto ceCost =
      results[1].meanSeries(&al::IterationRecord::cumulativeCost);
  ASSERT_EQ(vrCost.size(), 15u);
  EXPECT_LT(ceCost.back(), vrCost.back());
}

TEST(Integration, PowerDatasetEnergyModelLearnable) {
  const auto& power = dataset().power;
  ASSERT_GE(power.numRows(), 30u);
  auto sub = power.filter([&power](std::size_t i) {
    return power.categorical("Operator")[i] == "poisson1";
  });
  if (sub.numRows() < 20) GTEST_SKIP() << "too few poisson1 power jobs";
  const auto problem = al::makeProblem(
      sub, {"GlobalSize", "NP", "FreqGHz"}, "EnergyJ", "RuntimeS",
      {"GlobalSize", "EnergyJ"});
  gp::GpConfig gcfg;
  gcfg.nRestarts = 1;
  gcfg.noise.lo = 1e-4;
  gp::GaussianProcess g(
      gp::makeSquaredExponentialArd(1.0, {1.0, 1.0, 1.0}), gcfg);
  Rng rng(5);
  const std::size_t nTrain = problem.size() * 3 / 4;
  la::Matrix tx(nTrain, 3);
  la::Vector ty(nTrain);
  for (std::size_t i = 0; i < nTrain; ++i) {
    const auto row = problem.x.row(i);
    std::copy(row.begin(), row.end(), tx.row(i).begin());
    ty[i] = problem.y[i];
  }
  g.fit(std::move(tx), std::move(ty), rng);
  std::vector<double> pred, truth;
  for (std::size_t i = nTrain; i < problem.size(); ++i) {
    pred.push_back(g.predictOne(problem.x.row(i)).first);
    truth.push_back(problem.y[i]);
  }
  // Power data is noisier (paper Fig. 1b) — accept a looser error bar.
  EXPECT_LT(st::rmse(pred, truth), 0.4);
}

TEST(Integration, OnlineAlDrivesRealHpgmg) {
  // The paper's target use case: AL picks a configuration, the benchmark
  // actually runs, the measurement feeds the GP. Scaled down to three
  // grid sizes of the real solver.
  const std::vector<int> grids{7, 15, 31};
  const std::vector<alperf::hpgmg::StencilType> types{
      alperf::hpgmg::StencilType::Poisson1,
      alperf::hpgmg::StencilType::Poisson2};

  // Candidate configurations.
  struct Config {
    int n;
    alperf::hpgmg::StencilType type;
  };
  std::vector<Config> configs;
  for (int n : grids)
    for (auto t : types) configs.push_back({n, t});

  la::Matrix x(configs.size(), 2);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    x(i, 0) = std::log10(static_cast<double>(configs[i].n) * configs[i].n *
                         configs[i].n);
    x(i, 1) = configs[i].type == alperf::hpgmg::StencilType::Poisson1 ? 0.0
                                                                      : 1.0;
  }

  gp::GpConfig gcfg;
  gcfg.nRestarts = 1;
  gcfg.noise.lo = 1e-3;
  gp::GaussianProcess g(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                        gcfg);
  Rng rng(6);

  // Seed with one measurement, then AL-style loop over the rest.
  std::vector<std::size_t> trainIdx{0};
  std::vector<double> trainTimes{std::log10(std::max(
      alperf::hpgmg::runBenchmark(configs[0].type, configs[0].n).seconds,
      1e-6))};
  std::vector<std::size_t> pool{1, 2, 3, 4, 5};

  while (!pool.empty()) {
    la::Matrix tx(trainIdx.size(), 2);
    la::Vector ty(trainIdx.size());
    for (std::size_t i = 0; i < trainIdx.size(); ++i) {
      tx(i, 0) = x(trainIdx[i], 0);
      tx(i, 1) = x(trainIdx[i], 1);
      ty[i] = trainTimes[i];
    }
    g.fit(std::move(tx), std::move(ty), rng);
    // Pick the highest-variance candidate and actually run it.
    std::size_t best = 0;
    double bestVar = -1.0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const auto [m, v] = g.predictOne(x.row(pool[i]));
      if (v > bestVar) {
        bestVar = v;
        best = i;
      }
    }
    const std::size_t idx = pool[best];
    const auto result =
        alperf::hpgmg::runBenchmark(configs[idx].type, configs[idx].n);
    EXPECT_TRUE(result.converged);
    trainIdx.push_back(idx);
    trainTimes.push_back(std::log10(std::max(result.seconds, 1e-6)));
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
  }
  EXPECT_EQ(trainIdx.size(), configs.size());
}
