// Tests for static experiment designs (data/doe.hpp): full factorial,
// fractional factorial, Latin hypercube, scaling and pool matching.

#include "data/doe.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace data = alperf::data;
namespace la = alperf::la;
using alperf::stats::Rng;

TEST(FullFactorial, EnumeratesAllCombinations) {
  const auto d = data::fullFactorial({{1.0, 2.0}, {10.0, 20.0, 30.0}});
  EXPECT_EQ(d.rows(), 6u);
  EXPECT_EQ(d.cols(), 2u);
  std::set<std::pair<double, double>> seen;
  for (std::size_t i = 0; i < 6; ++i) seen.insert({d(i, 0), d(i, 1)});
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_TRUE(seen.count({2.0, 30.0}));
}

TEST(FullFactorial, SingleFactor) {
  const auto d = data::fullFactorial({{5.0, 7.0, 9.0}});
  EXPECT_EQ(d.rows(), 3u);
  EXPECT_DOUBLE_EQ(d(1, 0), 7.0);
}

TEST(FullFactorial, Validation) {
  EXPECT_THROW(data::fullFactorial({}), std::invalid_argument);
  EXPECT_THROW(data::fullFactorial({{1.0}, {}}), std::invalid_argument);
}

TEST(TwoLevelFactorial, CodedUnits) {
  const auto d = data::twoLevelFactorial(3);
  EXPECT_EQ(d.rows(), 8u);
  EXPECT_EQ(d.cols(), 3u);
  for (std::size_t i = 0; i < d.rows(); ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_TRUE(d(i, j) == -1.0 || d(i, j) == 1.0);
  // Balanced: each column sums to zero.
  for (std::size_t j = 0; j < 3; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < d.rows(); ++i) s += d(i, j);
    EXPECT_DOUBLE_EQ(s, 0.0);
  }
}

TEST(TwoLevelFactorial, ColumnsAreOrthogonal) {
  const auto d = data::twoLevelFactorial(4);
  for (std::size_t a = 0; a < 4; ++a)
    for (std::size_t b = a + 1; b < 4; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < d.rows(); ++i) dot += d(i, a) * d(i, b);
      EXPECT_DOUBLE_EQ(dot, 0.0);
    }
}

TEST(FractionalFactorial, HalfFraction) {
  // 2^(4-1) with D = ABC: 8 runs, 4 factors.
  const auto d = data::fractionalFactorial(4, {{0, 1, 2}});
  EXPECT_EQ(d.rows(), 8u);
  EXPECT_EQ(d.cols(), 4u);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(d(i, 3), d(i, 0) * d(i, 1) * d(i, 2));
  // Still balanced in the generated column.
  double s = 0.0;
  for (std::size_t i = 0; i < 8; ++i) s += d(i, 3);
  EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(FractionalFactorial, QuarterFraction) {
  // 2^(5-2): 8 runs, 5 factors, D = AB, E = AC.
  const auto d = data::fractionalFactorial(5, {{0, 1}, {0, 2}});
  EXPECT_EQ(d.rows(), 8u);
  EXPECT_EQ(d.cols(), 5u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(d(i, 3), d(i, 0) * d(i, 1));
    EXPECT_DOUBLE_EQ(d(i, 4), d(i, 0) * d(i, 2));
  }
}

TEST(FractionalFactorial, Validation) {
  EXPECT_THROW(data::fractionalFactorial(3, {}), std::invalid_argument);
  EXPECT_THROW(data::fractionalFactorial(2, {{0}, {0}}),
               std::invalid_argument);
  EXPECT_THROW(data::fractionalFactorial(4, {{5}}), std::invalid_argument);
  EXPECT_THROW(data::fractionalFactorial(4, {{}}), std::invalid_argument);
}

TEST(LatinHypercube, OnePointPerStratum) {
  Rng rng(1);
  const auto d = data::latinHypercube(10, 3, rng);
  EXPECT_EQ(d.rows(), 10u);
  EXPECT_EQ(d.cols(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    std::set<int> strata;
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_GE(d(i, j), 0.0);
      EXPECT_LT(d(i, j), 1.0);
      strata.insert(static_cast<int>(d(i, j) * 10.0));
    }
    EXPECT_EQ(strata.size(), 10u) << "column " << j;
  }
}

TEST(LatinHypercube, MaximinImprovesSpread) {
  Rng r1(2), r2(2);
  const auto greedy = data::latinHypercube(12, 2, r1, 20);
  const auto single = data::latinHypercube(12, 2, r2, 1);
  const auto minDist = [](const la::Matrix& m) {
    double best = 1e300;
    for (std::size_t i = 0; i < m.rows(); ++i)
      for (std::size_t j = i + 1; j < m.rows(); ++j)
        best = std::min(best, la::squaredDistance(m.row(i), m.row(j)));
    return best;
  };
  EXPECT_GE(minDist(greedy), minDist(single));
}

TEST(ScaleToBounds, AffineMapping) {
  la::Matrix d{{0.0, 0.5}, {1.0, 0.25}};
  const std::vector<double> lo{10.0, -2.0};
  const std::vector<double> hi{20.0, 2.0};
  data::scaleToBounds(d, lo, hi);
  EXPECT_DOUBLE_EQ(d(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 20.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(d(1, 1), -1.0);
  const std::vector<double> badLo{1.0};
  const std::vector<double> badHi{2.0};
  EXPECT_THROW(data::scaleToBounds(d, badLo, badHi), std::invalid_argument);
}

TEST(NearestPoolRows, ExactMatchesAndNoReplacement) {
  la::Matrix pool{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  la::Matrix design{{0.95, 0.98}, {1.02, 0.97}};
  const auto idx = data::nearestPoolRows(pool, design);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 3u);
  EXPECT_NE(idx[1], 3u);  // without replacement: second-best
}

TEST(NearestPoolRows, NormalizationMakesScalesComparable) {
  // Column 0 spans 1e6, column 1 spans 1: without normalization column 0
  // dominates; with it, the nearest point respects both.
  la::Matrix pool{{0.0, 0.0}, {1e6, 1.0}, {1e6, 0.0}};
  la::Matrix design{{1e6, 0.9}};
  const auto idx = data::nearestPoolRows(pool, design);
  EXPECT_EQ(idx[0], 1u);
}

TEST(NearestPoolRows, Validation) {
  la::Matrix pool(2, 2);
  EXPECT_THROW(data::nearestPoolRows(pool, la::Matrix(3, 2)),
               std::invalid_argument);
  EXPECT_THROW(data::nearestPoolRows(pool, la::Matrix(1, 3)),
               std::invalid_argument);
}

// Parameterized: LHS stratification holds for a sweep of sizes.
class LhsSizes : public ::testing::TestWithParam<int> {};

TEST_P(LhsSizes, Stratified) {
  const int n = GetParam();
  Rng rng(7);
  const auto d = data::latinHypercube(n, 2, rng, 3);
  for (std::size_t j = 0; j < 2; ++j) {
    std::set<int> strata;
    for (int i = 0; i < n; ++i)
      strata.insert(static_cast<int>(d(i, j) * n));
    EXPECT_EQ(strata.size(), static_cast<std::size_t>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LhsSizes, ::testing::Values(2, 5, 16, 33));
