// Tests for the column-typed Table (data/table.hpp).

#include "data/table.hpp"

#include <gtest/gtest.h>

namespace data = alperf::data;
using data::ColumnType;
using data::Table;

namespace {

Table sampleTable() {
  Table t;
  t.addCategorical("op", {"a", "b", "a", "c"});
  t.addNumeric("size", {10.0, 20.0, 30.0, 40.0});
  t.addNumeric("time", {1.0, 2.0, 3.0, 4.0});
  return t;
}

}  // namespace

TEST(Table, BasicShape) {
  const Table t = sampleTable();
  EXPECT_EQ(t.numRows(), 4u);
  EXPECT_EQ(t.numCols(), 3u);
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(Table().empty());
}

TEST(Table, ColumnLookup) {
  const Table t = sampleTable();
  EXPECT_TRUE(t.hasColumn("size"));
  EXPECT_FALSE(t.hasColumn("nope"));
  EXPECT_EQ(t.columnIndex("time"), 2u);
  EXPECT_THROW(t.columnIndex("nope"), std::invalid_argument);
  const auto names = t.columnNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "op");
}

TEST(Table, TypedAccess) {
  const Table t = sampleTable();
  EXPECT_DOUBLE_EQ(t.numeric("size")[2], 30.0);
  EXPECT_EQ(t.categorical("op")[3], "c");
  EXPECT_THROW(t.numeric("op"), std::invalid_argument);
  EXPECT_THROW(t.categorical("size"), std::invalid_argument);
}

TEST(Table, MutableNumericWritesThrough) {
  Table t = sampleTable();
  t.numericMutable("size")[0] = 99.0;
  EXPECT_DOUBLE_EQ(t.numeric("size")[0], 99.0);
}

TEST(Table, DuplicateColumnThrows) {
  Table t = sampleTable();
  EXPECT_THROW(t.addNumeric("size", {1.0, 2.0, 3.0, 4.0}),
               std::invalid_argument);
}

TEST(Table, LengthMismatchThrows) {
  Table t = sampleTable();
  EXPECT_THROW(t.addNumeric("extra", {1.0}), std::invalid_argument);
}

TEST(Table, AppendRowParsesNumerics) {
  Table t;
  t.addEmptyColumn("name", ColumnType::Categorical);
  t.addEmptyColumn("v", ColumnType::Numeric);
  t.appendRow({"x", "1.5"});
  t.appendRow({"y", "2.5e3"});
  EXPECT_EQ(t.numRows(), 2u);
  EXPECT_DOUBLE_EQ(t.numeric("v")[1], 2500.0);
  EXPECT_THROW(t.appendRow({"z", "abc"}), std::invalid_argument);
  EXPECT_THROW(t.appendRow({"only-one-cell"}), std::invalid_argument);
}

TEST(Table, SelectRowsReordersAndRepeats) {
  const Table t = sampleTable();
  const std::vector<std::size_t> idx{3, 0, 0};
  const Table s = t.selectRows(idx);
  EXPECT_EQ(s.numRows(), 3u);
  EXPECT_DOUBLE_EQ(s.numeric("size")[0], 40.0);
  EXPECT_DOUBLE_EQ(s.numeric("size")[1], 10.0);
  EXPECT_DOUBLE_EQ(s.numeric("size")[2], 10.0);
  EXPECT_EQ(s.categorical("op")[0], "c");
}

TEST(Table, SelectRowsOutOfRangeThrows) {
  const Table t = sampleTable();
  const std::vector<std::size_t> idx{7};
  EXPECT_THROW(t.selectRows(idx), std::invalid_argument);
}

TEST(Table, FilterByPredicate) {
  const Table t = sampleTable();
  const Table f = t.filter([&t](std::size_t i) {
    return t.categorical("op")[i] == "a";
  });
  EXPECT_EQ(f.numRows(), 2u);
  EXPECT_DOUBLE_EQ(f.numeric("time")[1], 3.0);
}

TEST(Table, WhichReturnsMatchingIndices) {
  const Table t = sampleTable();
  const auto idx =
      t.which([&t](std::size_t i) { return t.numeric("size")[i] > 15.0; });
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 1u);
}

TEST(Table, DesignMatrix) {
  const Table t = sampleTable();
  const auto m = t.designMatrix({"size", "time"});
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 0), 30.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 3.0);
  EXPECT_THROW(t.designMatrix({}), std::invalid_argument);
  EXPECT_THROW(t.designMatrix({"op"}), std::invalid_argument);
}

TEST(Table, DistinctValues) {
  const Table t = sampleTable();
  const auto ops = t.distinctCategorical("op");
  EXPECT_EQ(ops, (std::vector<std::string>{"a", "b", "c"}));
  Table t2;
  t2.addNumeric("v", {3.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(t2.distinctNumeric("v"), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Table, RemoveColumn) {
  Table t = sampleTable();
  t.removeColumn("time");
  EXPECT_EQ(t.numCols(), 2u);
  EXPECT_FALSE(t.hasColumn("time"));
  EXPECT_THROW(t.removeColumn("time"), std::invalid_argument);
}

TEST(Table, ColumnByIndex) {
  const Table t = sampleTable();
  EXPECT_EQ(t.column(1).name, "size");
  EXPECT_EQ(t.column(0).type, ColumnType::Categorical);
  EXPECT_THROW(t.column(9), std::invalid_argument);
}
