// Tests for the Bayesian-optimization mode (core/optimize.hpp): the
// acquisition math against hand-computed values, and the minimization
// loop against known optima — including the contrast with the paper's
// characterization strategies.

#include "core/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/learner.hpp"
#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace gp = alperf::gp;
namespace la = alperf::la;
using alperf::stats::Rng;

namespace {

/// Bowl-shaped pool problem: y = (x - 3)², minimum at row with x = 3.
al::RegressionProblem bowlProblem(std::size_t n = 41) {
  al::RegressionProblem p;
  p.x = la::Matrix(n, 1);
  p.y.resize(n);
  p.cost.assign(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = 10.0 * static_cast<double>(i) / (n - 1);
    p.x(i, 0) = x;
    p.y[i] = (x - 3.0) * (x - 3.0);
  }
  p.featureNames = {"x"};
  p.responseName = "y";
  return p;
}

gp::GaussianProcess proto() {
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-4;
  cfg.optStop.maxIterations = 40;
  return gp::GaussianProcess(gp::makeSquaredExponential(1.0, 1.0), cfg);
}

}  // namespace

TEST(NormalFunctions, KnownValues) {
  EXPECT_NEAR(al::normalPdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(al::normalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(al::normalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(al::normalCdf(-1.96), 0.025, 1e-3);
  // CDF is the integral of the PDF: finite-difference check.
  const double h = 1e-5;
  EXPECT_NEAR((al::normalCdf(0.7 + h) - al::normalCdf(0.7 - h)) / (2 * h),
              al::normalPdf(0.7), 1e-6);
}

TEST(ExpectedImprovement, HandComputedScore) {
  // Fit a near-noiseless GP on two points; compute EI at a candidate and
  // compare with the closed form using the GP's own (mu, sd).
  const auto problem = bowlProblem(5);  // x = 0, 2.5, 5, 7.5, 10
  Rng rng(1);
  auto g = proto();
  la::Matrix tx(2, 1);
  tx(0, 0) = problem.x(0, 0);
  tx(1, 0) = problem.x(2, 0);
  g.fit(tx, la::Vector{problem.y[0], problem.y[2]}, rng);

  const std::vector<std::size_t> cand{1, 3};
  al::ExpectedImprovement ei(0.0);
  const al::SelectionContext ctx{g, problem, cand, rng};
  const auto scores = ei.scores(ctx);
  const double best = std::min(problem.y[0], problem.y[2]);
  for (std::size_t i = 0; i < cand.size(); ++i) {
    const auto [mu, var] = g.predictOne(problem.x.row(cand[i]));
    const double sd = std::sqrt(var);
    const double z = (best - mu) / sd;
    const double expected =
        (best - mu) * al::normalCdf(z) + sd * al::normalPdf(z);
    EXPECT_NEAR(scores[i], expected, 1e-10);
    EXPECT_GE(scores[i], 0.0);  // EI is non-negative
  }
}

TEST(ExpectedImprovement, ZeroWhenCertainAndWorse) {
  // sd → 0 and mean above the incumbent ⇒ EI = 0.
  const auto problem = bowlProblem(11);
  Rng rng(2);
  auto g = proto();
  g.config().noise.lo = 1e-8;
  // Train on the candidate itself → tiny predictive sd there.
  la::Matrix tx(3, 1);
  tx(0, 0) = problem.x(0, 0);   // y = 9
  tx(1, 0) = problem.x(5, 0);   // y = 4 (best)
  tx(2, 0) = problem.x(10, 0);  // y = 49
  g.fit(tx, la::Vector{problem.y[0], problem.y[5], problem.y[10]}, rng);
  const std::vector<std::size_t> cand{10};  // certain and much worse
  al::ExpectedImprovement ei(0.0);
  const al::SelectionContext ctx{g, problem, cand, rng};
  EXPECT_NEAR(ei.scores(ctx)[0], 0.0, 1e-3);
}

TEST(LowerConfidenceBound, KappaControlsExploration) {
  const auto problem = bowlProblem(21);
  Rng rng(3);
  auto g = proto();
  la::Matrix tx(3, 1);
  tx(0, 0) = 2.0;
  tx(1, 0) = 3.0;
  tx(2, 0) = 4.0;
  // Minimum well below the GP's zero prior mean, so pure exploitation
  // has a clear target (a minimum at the prior mean would tie with the
  // unexplored far field).
  g.fit(tx, la::Vector{1.0, -1.0, 1.0}, rng);

  // Pure exploitation (kappa=0) picks near the known minimum; large kappa
  // prefers the unexplored far end.
  std::vector<std::size_t> cand;
  for (std::size_t i = 0; i < problem.size(); ++i) cand.push_back(i);
  al::LowerConfidenceBound exploit(0.0);
  al::LowerConfidenceBound explore(50.0);
  const al::SelectionContext ctx{g, problem, cand, rng};
  const double xExploit = problem.x(cand[exploit.select(ctx)], 0);
  const double xExplore = problem.x(cand[explore.select(ctx)], 0);
  EXPECT_NEAR(xExploit, 3.0, 1.0);
  EXPECT_GE(std::abs(xExplore - 3.0), 2.5);
}

TEST(ProbabilityOfImprovement, BoundedAndOrdered) {
  const auto problem = bowlProblem(21);
  Rng rng(4);
  auto g = proto();
  la::Matrix tx(2, 1);
  tx(0, 0) = 0.0;
  tx(1, 0) = 10.0;
  g.fit(tx, la::Vector{problem.y[0], problem.y[20]}, rng);
  std::vector<std::size_t> cand;
  for (std::size_t i = 1; i < 20; ++i) cand.push_back(i);
  al::ProbabilityOfImprovement pi(0.0);
  const al::SelectionContext ctx{g, problem, cand, rng};
  const auto s = pi.scores(ctx);
  for (double v : s) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(AcquisitionValidation, NegativeParamsThrow) {
  EXPECT_THROW(al::ExpectedImprovement(-0.1), std::invalid_argument);
  EXPECT_THROW(al::LowerConfidenceBound(-1.0), std::invalid_argument);
  EXPECT_THROW(al::ProbabilityOfImprovement(-0.1), std::invalid_argument);
}

TEST(MinimizeResponse, FindsBowlMinimum) {
  const auto problem = bowlProblem();
  al::ExpectedImprovement ei;
  Rng rng(5);
  const auto result =
      al::minimizeResponse(problem, proto(), ei, 3, 12, rng);
  EXPECT_EQ(result.history.size(), 12u);
  // True minimum is y = 0.0156 at x = 3 (closest grid point x = 3.0).
  EXPECT_NEAR(problem.x(result.bestRow, 0), 3.0, 0.5);
  EXPECT_LT(result.bestValue, 0.3);
  // bestSoFar is monotone non-increasing.
  for (std::size_t i = 1; i < result.history.size(); ++i)
    EXPECT_LE(result.history[i].bestSoFar,
              result.history[i - 1].bestSoFar + 1e-15);
}

TEST(MinimizeResponse, LcbAlsoWorks) {
  const auto problem = bowlProblem();
  al::LowerConfidenceBound lcb(2.0);
  Rng rng(6);
  const auto result =
      al::minimizeResponse(problem, proto(), lcb, 3, 12, rng);
  EXPECT_LT(result.bestValue, 0.5);
}

TEST(MinimizeResponse, Validation) {
  const auto problem = bowlProblem(10);
  al::ExpectedImprovement ei;
  Rng rng(7);
  EXPECT_THROW(al::minimizeResponse(problem, proto(), ei, 0, 3, rng),
               std::invalid_argument);
  EXPECT_THROW(al::minimizeResponse(problem, proto(), ei, 5, 20, rng),
               std::invalid_argument);
}

TEST(MinimizeResponse, BeatsCharacterizationAtFindingOptimum) {
  // The paper's Sec. II-C contrast: an optimizer should find the minimum
  // with fewer experiments than a space-characterization strategy, which
  // spends its budget at the informative (but high-y) edges.
  const auto problem = bowlProblem(61);
  Rng rng(8);

  al::ExpectedImprovement ei;
  Rng eiRng(9);
  const auto opt = al::minimizeResponse(problem, proto(), ei, 3, 10, eiRng);

  // Characterization: run VR AL with the same total budget (13 picks) and
  // check the best value it happened to visit.
  al::AlConfig cfg;
  cfg.maxIterations = 13;
  al::ActiveLearner learner(problem, proto(),
                            std::make_unique<al::VarianceReduction>(), cfg);
  Rng vrRng(9);
  const auto vr = learner.run(vrRng);
  double vrBest = 1e300;
  for (const auto& rec : vr.history)
    vrBest = std::min(vrBest, problem.y[rec.chosenRow]);

  EXPECT_LE(opt.bestValue, vrBest + 1e-12);
}
