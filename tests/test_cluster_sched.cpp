// Tests for the discrete-event cluster simulator and SLURM-like scheduler
// (cluster/scheduler.hpp).

#include "cluster/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace cl = alperf::cluster;
using cl::ClusterConfig;
using cl::ClusterSim;
using cl::JobRequest;
using cl::Operator;
using cl::PerfModel;

namespace {

cl::PerfModelParams quietParams() {
  cl::PerfModelParams p;
  p.noiseSigma = 1e-6;
  p.spikeProbability = 0.0;
  return p;
}

JobRequest smallJob(int np = 8) {
  return {Operator::Poisson1, 1.0e6, np, 2.4};
}

}  // namespace

TEST(ClusterSim, SingleJobLifecycle) {
  ClusterConfig cfg;
  ClusterSim sim(cfg, PerfModel(quietParams()), 1);
  const auto id = sim.submit(smallJob(), 0.0);
  sim.run();
  const auto& rec = sim.records()[id];
  EXPECT_EQ(rec.id, id);
  EXPECT_DOUBLE_EQ(rec.startTime, 0.0);
  EXPECT_GT(rec.runtimeSeconds, 0.0);
  EXPECT_NEAR(rec.endTime,
              rec.startTime + cfg.prologSeconds + rec.runtimeSeconds +
                  cfg.epilogSeconds,
              1e-9);
  EXPECT_EQ(rec.coresUsed, 8);
  EXPECT_EQ(rec.nodesUsed, 1);
}

TEST(ClusterSim, RuntimeMatchesModelMean) {
  ClusterSim sim(ClusterConfig{}, PerfModel(quietParams()), 2);
  const auto id = sim.submit(smallJob(16), 0.0);
  sim.run();
  const PerfModel m(quietParams());
  EXPECT_NEAR(sim.records()[id].runtimeSeconds, m.meanRuntime(smallJob(16)),
              0.01 * m.meanRuntime(smallJob(16)));
}

TEST(ClusterSim, ParallelJobsWhenCoresAvailable) {
  // Two 32-core jobs fit the 64-core machine simultaneously.
  ClusterSim sim(ClusterConfig{}, PerfModel(quietParams()), 3);
  const auto a = sim.submit(smallJob(32), 0.0);
  const auto b = sim.submit(smallJob(32), 0.0);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.records()[a].startTime, 0.0);
  EXPECT_DOUBLE_EQ(sim.records()[b].startTime, 0.0);
}

TEST(ClusterSim, QueueingWhenMachineFull) {
  // Two 64-core jobs must run serially.
  ClusterSim sim(ClusterConfig{}, PerfModel(quietParams()), 4);
  const auto a = sim.submit(smallJob(64), 0.0);
  const auto b = sim.submit(smallJob(64), 0.0);
  sim.run();
  const auto& ra = sim.records()[a];
  const auto& rb = sim.records()[b];
  EXPECT_GE(rb.startTime, ra.endTime - 1e-9);
  EXPECT_GT(rb.queueWait(), 0.0);
}

TEST(ClusterSim, BackfillLetsSmallJobJumpQueue) {
  // Head-of-line blocking: a 64-core job waits behind a long 33-core job;
  // a short 16-core job can backfill into the idle cores meanwhile.
  cl::PerfModelParams params = quietParams();
  ClusterConfig cfg;
  ClusterSim sim(cfg, PerfModel(params), 5);
  const auto longJob =
      sim.submit({Operator::Poisson2Affine, 5.0e8, 33, 1.2}, 0.0);
  const auto blocked = sim.submit(smallJob(64), 1.0);
  const auto filler = sim.submit({Operator::Poisson1, 1.0e5, 16, 2.4}, 2.0);
  sim.run();
  const auto& rLong = sim.records()[longJob];
  const auto& rBlocked = sim.records()[blocked];
  const auto& rFiller = sim.records()[filler];
  // Filler starts while the long job still runs, before the blocked job.
  EXPECT_LT(rFiller.startTime, rLong.endTime);
  EXPECT_LT(rFiller.startTime, rBlocked.startTime);
  // And the blocked job is not delayed by the filler: it starts as soon
  // as the long job's window ends.
  EXPECT_NEAR(rBlocked.startTime, rLong.endTime, 1.0);
}

TEST(ClusterSim, ArrivalTimesRespected) {
  ClusterSim sim(ClusterConfig{}, PerfModel(quietParams()), 6);
  const auto id = sim.submit(smallJob(), 1000.0);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.records()[id].startTime, 1000.0);
}

TEST(ClusterSim, OversubscribedJobUsesWholeMachine) {
  ClusterSim sim(ClusterConfig{}, PerfModel(quietParams()), 7);
  const auto id = sim.submit(smallJob(128), 0.0);
  sim.run();
  EXPECT_EQ(sim.records()[id].coresUsed, 64);
  EXPECT_EQ(sim.records()[id].nodesUsed, 4);
}

TEST(ClusterSim, LoadIntervalsMatchComputePhase) {
  ClusterConfig cfg;
  ClusterSim sim(cfg, PerfModel(quietParams()), 8);
  const auto id = sim.submit(smallJob(16), 0.0);
  sim.run();
  const auto& rec = sim.records()[id];
  int busyNodes = 0;
  for (int n = 0; n < cfg.nodes; ++n) {
    for (const auto& iv : sim.nodeLoad(n)) {
      ++busyNodes;
      EXPECT_NEAR(iv.begin, rec.startTime + cfg.prologSeconds, 1e-9);
      EXPECT_NEAR(iv.end, iv.begin + rec.runtimeSeconds, 1e-9);
      EXPECT_NEAR(iv.utilization, 1.0, 1e-9);  // 16 cores on a 16-core node
      EXPECT_DOUBLE_EQ(iv.freqGhz, 2.4);
    }
  }
  EXPECT_EQ(busyNodes, 1);
}

TEST(ClusterSim, MakespanCoversAllWindows) {
  ClusterSim sim(ClusterConfig{}, PerfModel(quietParams()), 9);
  for (int i = 0; i < 5; ++i) sim.submit(smallJob(32), i * 3.0);
  sim.run();
  double maxEnd = 0.0;
  for (const auto& r : sim.records()) maxEnd = std::max(maxEnd, r.endTime);
  EXPECT_DOUBLE_EQ(sim.makespan(), maxEnd);
}

TEST(ClusterSim, ManyJobsAllComplete) {
  ClusterSim sim(ClusterConfig{}, PerfModel(quietParams()), 10);
  for (int i = 0; i < 60; ++i)
    sim.submit(smallJob(1 + (i * 7) % 64), i * 1.0);
  sim.run();
  EXPECT_TRUE(sim.finished());
  for (const auto& r : sim.records()) {
    EXPECT_GE(r.startTime, r.submitTime);
    EXPECT_GT(r.endTime, r.startTime);
    EXPECT_GE(r.coresUsed, 1);
  }
}

TEST(ClusterSim, CoresNeverOverAllocated) {
  // Reconstruct per-node concurrent core usage from placements and check
  // it never exceeds capacity.
  ClusterConfig cfg;
  ClusterSim sim(cfg, PerfModel(quietParams()), 11);
  for (int i = 0; i < 40; ++i)
    sim.submit(smallJob(1 + (i * 13) % 64), i * 0.5);
  sim.run();
  const auto& recs = sim.records();
  for (const auto& probe : recs) {
    // Sample at this job's midpoint.
    const double t = 0.5 * (probe.startTime + probe.endTime);
    std::vector<int> used(cfg.nodes, 0);
    for (const auto& r : recs) {
      if (r.startTime <= t && t < r.endTime) {
        const auto& p = sim.placements()[r.id];
        for (int n = 0; n < cfg.nodes; ++n) used[n] += p.cores[n];
      }
    }
    for (int n = 0; n < cfg.nodes; ++n)
      EXPECT_LE(used[n], cfg.coresPerNode) << "node " << n;
  }
}

TEST(ClusterSim, SubmitAfterRunThrows) {
  ClusterSim sim(ClusterConfig{}, PerfModel(quietParams()), 12);
  sim.submit(smallJob(), 0.0);
  sim.run();
  EXPECT_THROW(sim.submit(smallJob(), 0.0), std::invalid_argument);
  EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(ClusterSim, RecordsBeforeRunThrows) {
  ClusterSim sim(ClusterConfig{}, PerfModel(quietParams()), 13);
  EXPECT_THROW(sim.records(), std::invalid_argument);
}

TEST(ClusterSim, ConfigModelShapeMismatchThrows) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  EXPECT_THROW(ClusterSim(cfg, PerfModel(quietParams()), 1),
               std::invalid_argument);
}

TEST(Placement, Helpers) {
  cl::Placement p;
  p.cores = {16, 8, 0, 0};
  EXPECT_EQ(p.totalCores(), 24);
  EXPECT_EQ(p.nodesUsed(), 2);
}
