// Tests for Gaussian Process Regression (gp/gp.hpp): posterior math
// (paper eqs. 4–7), LML and its analytic gradient (eqs. 12–13), noise
// bounds (the Fig. 7 knob), model selection, and sampling.

#include <gtest/gtest.h>

#include <cmath>

#include "gp/gp.hpp"
#include "gp/kernels.hpp"

namespace gp = alperf::gp;
namespace la = alperf::la;
using alperf::stats::Rng;

namespace {

/// 1-D design matrix from a vector of abscissae.
la::Matrix col(const std::vector<double>& xs) {
  la::Matrix m(xs.size(), 1);
  for (std::size_t i = 0; i < xs.size(); ++i) m(i, 0) = xs[i];
  return m;
}

gp::GaussianProcess makeGp(double noiseLo = 1e-8, bool optimize = true) {
  gp::GpConfig cfg;
  cfg.optimize = optimize;
  cfg.nRestarts = 2;
  cfg.noise.lo = noiseLo;
  cfg.noise.initial = std::max(1e-2, noiseLo);
  return gp::GaussianProcess(gp::makeSquaredExponential(1.0, 1.0), cfg);
}

/// Smooth 1-D target used across tests.
double target(double x) { return std::sin(1.5 * x) + 0.3 * x; }

}  // namespace

TEST(Gp, RequiresKernel) {
  EXPECT_THROW(gp::GaussianProcess(nullptr), std::invalid_argument);
}

TEST(Gp, PredictBeforeFitThrows) {
  auto g = makeGp();
  EXPECT_THROW(g.predict(la::Matrix(1, 1)), std::invalid_argument);
  EXPECT_THROW(g.logMarginalLikelihood(), std::invalid_argument);
}

TEST(Gp, FitValidation) {
  auto g = makeGp();
  Rng rng(1);
  EXPECT_THROW(g.fit(la::Matrix(2, 1), la::Vector{1.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(g.fit(la::Matrix(0, 1), la::Vector{}, rng),
               std::invalid_argument);
}

TEST(Gp, SinglePointPosterior) {
  auto g = makeGp();
  Rng rng(2);
  g.fit(col({0.5}), la::Vector{2.0}, rng);
  const auto [mean, var] = g.predictOne(std::vector<double>{0.5});
  EXPECT_NEAR(mean, 2.0, 0.1);
  // Far away the posterior reverts toward the prior (mean 0, larger var).
  const auto [farMean, farVar] = g.predictOne(std::vector<double>{50.0});
  EXPECT_NEAR(farMean, 0.0, 0.2);
  EXPECT_GT(farVar, var);
}

TEST(Gp, InterpolatesSmoothFunction) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 12; ++i) {
    xs.push_back(-3.0 + 0.5 * i);
    ys.push_back(target(xs.back()));
  }
  auto g = makeGp();
  Rng rng(3);
  g.fit(col(xs), ys, rng);
  for (double x : {-2.75, -1.1, 0.3, 1.9, 2.6}) {
    const auto [mean, var] = g.predictOne(std::vector<double>{x});
    EXPECT_NEAR(mean, target(x), 0.05) << "at x=" << x;
  }
}

TEST(Gp, VarianceSmallAtDataLargeBetweenAndOutside) {
  const std::vector<double> xs{-2.0, -1.0, 0.0, 1.0, 2.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(target(x));
  auto g = makeGp();
  Rng rng(4);
  g.fit(col(xs), ys, rng);
  const auto [mAt, vAt] = g.predictOne(std::vector<double>{0.0});
  const auto [mBetween, vBetween] = g.predictOne(std::vector<double>{0.5});
  const auto [mOutside, vOutside] = g.predictOne(std::vector<double>{6.0});
  EXPECT_LT(vAt, vBetween);
  EXPECT_LT(vBetween, vOutside);
}

TEST(Gp, EdgeOfDomainUncertaintyGrows) {
  // Paper Fig. 3b: uncertainty is exaggerated at the domain edge when no
  // measurement is nearby.
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(target(x));
  auto g = makeGp();
  Rng rng(5);
  g.fit(col(xs), ys, rng);
  double prevSd = 0.0;
  for (double x : {3.0, 4.0, 5.0, 6.0}) {
    const auto [mean, var] = g.predictOne(std::vector<double>{x});
    const double sd = std::sqrt(var);
    EXPECT_GE(sd, prevSd - 1e-12);
    prevSd = sd;
  }
}

TEST(Gp, ShorterLengthScaleWidensConfidenceBetweenPoints) {
  // Paper Fig. 3a: decreasing l inflates the CI between measurements.
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(target(x));

  gp::GpConfig cfg;
  cfg.optimize = false;  // keep hyperparameters fixed
  cfg.noise.initial = 1e-6;
  Rng rng(6);

  gp::GaussianProcess wide(gp::makeSquaredExponential(1.0, 1.5), cfg);
  wide.fit(col(xs), ys, rng);
  gp::GaussianProcess narrow(gp::makeSquaredExponential(1.0, 0.3), cfg);
  narrow.fit(col(xs), ys, rng);

  const auto [mw, vw] = wide.predictOne(std::vector<double>{0.5});
  const auto [mn, vn] = narrow.predictOne(std::vector<double>{0.5});
  EXPECT_GT(vn, vw);
}

TEST(Gp, IncludeNoiseAddsNoiseVariance) {
  auto g = makeGp(1e-2);
  Rng rng(7);
  g.fit(col({0.0, 1.0, 2.0}), la::Vector{0.0, 1.0, 0.5}, rng);
  const auto latent = g.predict(col({0.7}), false);
  const auto observed = g.predict(col({0.7}), true);
  EXPECT_NEAR(observed.variance[0] - latent.variance[0], g.noiseVariance(),
              1e-10);
}

TEST(Gp, NoiseBoundIsRespected) {
  // Perfectly consistent data would push σ_n² to ~0; the bound holds it.
  auto g = makeGp(1e-1);
  Rng rng(8);
  std::vector<double> xs, ys;
  for (int i = 0; i < 8; ++i) {
    xs.push_back(i);
    ys.push_back(0.5 * i);
  }
  g.fit(col(xs), ys, rng);
  EXPECT_GE(g.noiseVariance(), 1e-1 - 1e-12);
}

TEST(Gp, LowNoiseBoundAllowsOverfit) {
  // With the permissive bound the same data drives σ_n² far below 1e-1 —
  // the paper's Fig. 7a overfitting mechanism.
  auto g = makeGp(1e-8);
  Rng rng(9);
  std::vector<double> xs, ys;
  for (int i = 0; i < 8; ++i) {
    xs.push_back(i);
    ys.push_back(0.5 * i);
  }
  g.fit(col(xs), ys, rng);
  EXPECT_LT(g.noiseVariance(), 1e-2);
}

TEST(Gp, RepeatedMeasurementsHandled) {
  // Two different y at the same x must not break the factorization; the
  // prediction lands between them and noise is inflated.
  auto g = makeGp(1e-8);
  Rng rng(10);
  g.fit(col({1.0, 1.0, 3.0}), la::Vector{0.8, 1.2, 2.0}, rng);
  const auto [mean, var] = g.predictOne(std::vector<double>{1.0});
  EXPECT_GT(mean, 0.7);
  EXPECT_LT(mean, 1.3);
  EXPECT_GT(g.noiseVariance(), 1e-6);
}

TEST(Gp, LmlGradientMatchesNumeric) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 7; ++i) {
    xs.push_back(0.7 * i);
    ys.push_back(target(xs.back()));
  }
  auto g = makeGp();
  Rng rng(11);
  g.fit(col(xs), ys, rng);

  const std::vector<double> theta{std::log(1.3), std::log(0.9),
                                  std::log(0.05)};
  const auto grad = g.logMarginalLikelihoodGradientAt(theta);
  ASSERT_EQ(grad.size(), 3u);
  const double h = 1e-6;
  for (std::size_t p = 0; p < 3; ++p) {
    auto tp = theta;
    tp[p] += h;
    const double up = g.logMarginalLikelihoodAt(tp);
    tp[p] = theta[p] - h;
    const double dn = g.logMarginalLikelihoodAt(tp);
    EXPECT_NEAR(grad[p], (up - dn) / (2.0 * h), 1e-4) << "param " << p;
  }
}

TEST(Gp, OptimizationImprovesLml) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(0.5 * i);
    ys.push_back(target(xs.back()));
  }
  // Fixed (bad) hyperparameters vs optimized.
  gp::GpConfig fixedCfg;
  fixedCfg.optimize = false;
  fixedCfg.noise.initial = 1.0;
  gp::GaussianProcess fixed(gp::makeSquaredExponential(0.1, 5.0), fixedCfg);
  Rng rng(12);
  fixed.fit(col(xs), ys, rng);

  auto opt = makeGp();
  opt.fit(col(xs), ys, rng);
  EXPECT_GT(opt.logMarginalLikelihood(), fixed.logMarginalLikelihood());
}

TEST(Gp, LmlAtMatchesFittedValue) {
  auto g = makeGp();
  Rng rng(13);
  g.fit(col({0.0, 1.0, 2.0}), la::Vector{0.1, 0.9, 0.2}, rng);
  EXPECT_NEAR(g.logMarginalLikelihoodAt(g.thetaFull()),
              g.logMarginalLikelihood(), 1e-9);
}

TEST(Gp, LmlAtWrongSizeThrows) {
  auto g = makeGp();
  Rng rng(14);
  g.fit(col({0.0, 1.0}), la::Vector{0.0, 1.0}, rng);
  EXPECT_THROW(g.logMarginalLikelihoodAt(std::vector<double>{0.0}),
               std::invalid_argument);
}

TEST(Gp, FixedHyperparametersAreKept) {
  gp::GpConfig cfg;
  cfg.optimize = false;
  cfg.noise.initial = 0.123;
  gp::GaussianProcess g(gp::makeSquaredExponential(2.0, 0.7), cfg);
  Rng rng(15);
  g.fit(col({0.0, 1.0, 2.0}), la::Vector{0.0, 1.0, 0.0}, rng);
  EXPECT_NEAR(g.noiseVariance(), 0.123, 1e-14);
  const auto theta = g.kernel().theta();
  EXPECT_NEAR(theta[0], std::log(2.0), 1e-14);
  EXPECT_NEAR(theta[1], std::log(0.7), 1e-14);
}

TEST(Gp, PredictOneMatchesBatchPredict) {
  auto g = makeGp();
  Rng rng(16);
  g.fit(col({0.0, 0.5, 1.0, 1.5}), la::Vector{0.0, 0.4, 0.9, 1.0}, rng);
  const la::Matrix q = col({0.25, 0.75, 1.25});
  const auto batch = g.predict(q);
  for (std::size_t i = 0; i < q.rows(); ++i) {
    const auto [m, v] = g.predictOne(q.row(i));
    EXPECT_NEAR(m, batch.mean[i], 1e-12);
    EXPECT_NEAR(v, batch.variance[i], 1e-12);
  }
}

TEST(Gp, PosteriorCovarianceDiagonalMatchesVariance) {
  auto g = makeGp();
  Rng rng(17);
  g.fit(col({0.0, 1.0, 2.0, 3.0}), la::Vector{0.0, 0.8, 0.9, 0.1}, rng);
  const la::Matrix q = col({0.5, 1.5, 2.5});
  const auto pred = g.predict(q);
  const la::Matrix cov = g.posteriorCovariance(q);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(cov(i, i), pred.variance[i], 1e-8);
  // Symmetric.
  EXPECT_NEAR(cov(0, 1), cov(1, 0), 1e-10);
}

TEST(Gp, PosteriorSamplesCenterOnMean) {
  auto g = makeGp();
  Rng rng(18);
  g.fit(col({0.0, 1.0, 2.0}), la::Vector{0.0, 1.0, 0.5}, rng);
  const la::Matrix q = col({0.5, 1.5});
  const auto pred = g.predict(q);
  Rng sampleRng(19);
  const auto samples = g.samplePosterior(q, 400, sampleRng);
  ASSERT_EQ(samples.size(), 400u);
  for (std::size_t j = 0; j < q.rows(); ++j) {
    double mean = 0.0;
    for (const auto& s : samples) mean += s[j];
    mean /= samples.size();
    EXPECT_NEAR(mean, pred.mean[j], 0.1);
  }
}

TEST(Gp, CopyIsIndependentAndIdentical) {
  auto g = makeGp();
  Rng rng(20);
  g.fit(col({0.0, 1.0, 2.0}), la::Vector{0.3, 0.9, 0.1}, rng);
  gp::GaussianProcess copy(g);
  const auto [m1, v1] = g.predictOne(std::vector<double>{0.7});
  const auto [m2, v2] = copy.predictOne(std::vector<double>{0.7});
  EXPECT_DOUBLE_EQ(m1, m2);
  EXPECT_DOUBLE_EQ(v1, v2);
  // Refit the copy; the original is untouched.
  copy.fit(col({5.0}), la::Vector{-1.0}, rng);
  const auto [m3, v3] = g.predictOne(std::vector<double>{0.7});
  EXPECT_DOUBLE_EQ(m1, m3);
}

TEST(Gp, LooPseudoLikelihoodFiniteAndSelectionWorks) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 8; ++i) {
    xs.push_back(0.6 * i);
    ys.push_back(target(xs.back()));
  }
  gp::GpConfig cfg;
  cfg.selection = gp::ModelSelection::LeaveOneOutCV;
  cfg.nRestarts = 1;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  Rng rng(21);
  g.fit(col(xs), ys, rng);
  EXPECT_TRUE(std::isfinite(g.looLogPseudoLikelihoodAt(g.thetaFull())));
  // Model should still predict well.
  const auto [mean, var] = g.predictOne(std::vector<double>{1.5});
  EXPECT_NEAR(mean, target(1.5), 0.2);
}

TEST(Gp, DimensionMismatchOnPredictThrows) {
  auto g = makeGp();
  Rng rng(22);
  g.fit(col({0.0, 1.0}), la::Vector{0.0, 1.0}, rng);
  EXPECT_THROW(g.predict(la::Matrix(1, 2)), std::invalid_argument);
}

TEST(Gp, TwoDimensionalInputs) {
  // f(x, y) = x + sin(y): ARD GP should fit with low error.
  la::Matrix x(25, 2);
  la::Vector y(25);
  int r = 0;
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j, ++r) {
      x(r, 0) = 0.5 * i;
      x(r, 1) = 0.7 * j;
      y[r] = x(r, 0) + std::sin(x(r, 1));
    }
  gp::GpConfig cfg;
  cfg.nRestarts = 2;
  gp::GaussianProcess g(
      gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}), cfg);
  Rng rng(23);
  g.fit(x, y, rng);
  const auto [mean, var] = g.predictOne(std::vector<double>{1.25, 1.05});
  EXPECT_NEAR(mean, 1.25 + std::sin(1.05), 0.1);
}

TEST(Gp, NoiseConfigValidation) {
  gp::GpConfig cfg;
  cfg.noise.lo = -1.0;
  EXPECT_THROW(
      gp::GaussianProcess(gp::makeSquaredExponential(1.0, 1.0), cfg),
      std::invalid_argument);
  gp::GpConfig cfg2;
  cfg2.noise.lo = 1.0;
  cfg2.noise.hi = 0.5;
  EXPECT_THROW(
      gp::GaussianProcess(gp::makeSquaredExponential(1.0, 1.0), cfg2),
      std::invalid_argument);
}

// Parameterized: every kernel family fits the smooth target well.
class GpKernelFamilies : public ::testing::TestWithParam<int> {};

TEST_P(GpKernelFamilies, FitsSmoothTarget) {
  gp::KernelPtr kernel;
  switch (GetParam()) {
    case 0:
      kernel = gp::makeSquaredExponential(1.0, 1.0);
      break;
    case 1:
      kernel = std::make_unique<gp::ConstantKernel>(1.0) *
               std::make_unique<gp::Matern32Kernel>(1.0);
      break;
    case 2:
      kernel = std::make_unique<gp::ConstantKernel>(1.0) *
               std::make_unique<gp::Matern52Kernel>(1.0);
      break;
    default:
      kernel = std::make_unique<gp::ConstantKernel>(1.0) *
               std::make_unique<gp::RationalQuadraticKernel>(1.0, 1.0);
      break;
  }
  gp::GpConfig cfg;
  cfg.nRestarts = 2;
  gp::GaussianProcess g(std::move(kernel), cfg);
  std::vector<double> xs, ys;
  for (int i = 0; i <= 16; ++i) {
    xs.push_back(-3.0 + 0.375 * i);
    ys.push_back(target(xs.back()));
  }
  Rng rng(100 + GetParam());
  g.fit(col(xs), ys, rng);
  double err = 0.0;
  int count = 0;
  for (double x = -2.8; x <= 2.8; x += 0.37, ++count) {
    const auto [mean, var] = g.predictOne(std::vector<double>{x});
    err += (mean - target(x)) * (mean - target(x));
  }
  EXPECT_LT(std::sqrt(err / count), 0.1);
}

INSTANTIATE_TEST_SUITE_P(Families, GpKernelFamilies,
                         ::testing::Values(0, 1, 2, 3));
