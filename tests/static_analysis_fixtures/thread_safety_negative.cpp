// Seeded thread-safety negative fixture — NOT part of any build target.
//
// The static-analysis CI job compiles this file with
//   clang++ -std=c++20 -I src -fsyntax-only -Wthread-safety \
//           -Werror=thread-safety
// and requires the compile to FAIL: every access below violates the
// capability annotations from common/thread_annotations.hpp, so a clean
// compile would mean the analysis is not actually running (wrong flags,
// wrong compiler, or a broken macro header) — exactly the silent failure
// mode this fixture exists to catch.

#include "common/thread_annotations.hpp"

namespace fixture {

class Counter {
 public:
  // VIOLATION: reads `value_` without holding mu_.
  int unsyncedRead() const { return value_; }

  // VIOLATION: writes `value_` without holding mu_.
  void unsyncedWrite(int v) { value_ = v; }

  // VIOLATION: bumpLocked requires mu_, caller does not hold it.
  void callsLockedHelperUnlocked() { bumpLocked(); }

 private:
  void bumpLocked() ALPERF_REQUIRES(mu_) { ++value_; }

  mutable alperf::Mutex mu_;
  int value_ ALPERF_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
