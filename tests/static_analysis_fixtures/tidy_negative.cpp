// Seeded clang-tidy negative fixture — NOT part of any build target.
//
// scripts/run_clang_tidy.sh --self-test runs the project .clang-tidy over
// this file and fails unless findings are reported, proving the baseline
// detects what it claims to. Each seeded bug names the check that must
// catch it. Keep this file compiling (the self-test passes it to the
// compiler) but deliberately dirty.

#include <string>
#include <vector>

namespace fixture {

struct Base {
  virtual ~Base() = default;
  virtual int value() const { return 0; }
};

// modernize-use-override: overriding without the keyword.
struct Derived : Base {
  virtual int value() const { return 1; }
};

// readability-container-size-empty: size() == 0 instead of empty().
inline bool isEmpty(const std::vector<int>& v) { return v.size() == 0; }

// performance-unnecessary-value-param: expensive copy taken by value and
// only read.
inline std::size_t length(std::string s) { return s.size(); }

// modernize-use-nullptr: literal 0 as a pointer.
inline const int* nothing() { return 0; }

// bugprone-integer-division: integer division inside a float context.
inline double half(int n) { return n / 2; }

}  // namespace fixture
