// Chaos suite for the numerical self-healing layer: every rung of the
// degradation ladder (docs/ROBUSTNESS.md) is forced via the deterministic
// fault-injection harness (common/fault_inject.hpp) and asserted through
// the health counters it must leave behind. Also covers the fault-spec
// grammar, the HealthMonitor ring buffer, the multi-start non-finite
// discard, and the two determinism contracts: unarmed runs inject
// nothing, and armed runs are bit-identical at any thread count.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/fault_inject.hpp"
#include "common/health.hpp"
#include "common/perf_stats.hpp"
#include "common/thread_pool.hpp"
#include "core/continuous.hpp"
#include "core/learner.hpp"
#include "gp/kernels.hpp"
#include "la/cholesky.hpp"
#include "opt/multistart.hpp"

namespace al = alperf::al;
namespace gp = alperf::gp;
namespace la = alperf::la;
namespace opt = alperf::opt;
using alperf::FaultAttrs;
using alperf::FaultContext;
using alperf::FaultInjector;
using alperf::HealthMonitor;
using alperf::Parallelism;
using alperf::PerfRegistry;
using alperf::stats::Rng;

namespace {

/// Arms a fault spec for the test body and guarantees disarm on exit, so
/// a failing assertion cannot leak injection into later tests.
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) {
    FaultInjector::instance().arm(spec);
  }
  ~FaultGuard() { FaultInjector::instance().disarm(); }
  FaultGuard(const FaultGuard&) = delete;
  FaultGuard& operator=(const FaultGuard&) = delete;
};

/// Restores the global thread count on scope exit.
struct ThreadGuard {
  ~ThreadGuard() { Parallelism::setThreads(0); }
};

std::uint64_t counter(const std::string& name) {
  return PerfRegistry::instance().count(name);
}

/// Noisy 1-D problem (same shape as the learner tests).
al::RegressionProblem makeProblem(std::size_t n, std::uint64_t seed = 3,
                                  double noise = 0.02) {
  al::RegressionProblem p;
  p.x = la::Matrix(n, 1);
  p.y.resize(n);
  p.cost.resize(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = 10.0 * static_cast<double>(i) / (n - 1);
    p.x(i, 0) = x;
    p.y[i] = std::sin(x) + 0.2 * x + rng.normal(0.0, noise);
    p.cost[i] = 1.0 + 0.1 * x;
  }
  p.featureNames = {"x"};
  p.responseName = "y";
  return p;
}

gp::GaussianProcess prototype() {
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-6;
  cfg.noise.initial = 1e-2;
  cfg.optStop.maxIterations = 40;
  return gp::GaussianProcess(gp::makeSquaredExponential(1.0, 1.0), cfg);
}

al::AlResult runCampaign(unsigned seed, al::AlConfig cfg = {}) {
  if (cfg.maxIterations < 0) cfg.maxIterations = 6;
  cfg.nInitial = 3;
  al::ActiveLearner learner(makeProblem(40), prototype(),
                            std::make_unique<al::VarianceReduction>(), cfg);
  Rng rng(seed);
  return learner.run(rng);
}

/// Deterministic SPD matrix: AᵀA + n·I from a seeded pattern.
la::Matrix makeSpd(std::size_t n, int seed = 1) {
  la::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = std::sin(static_cast<double>((i + 1) * (j + 2) * seed));
  la::Matrix spd = la::gram(a);
  spd.addToDiagonal(static_cast<double>(n));
  return spd;
}

void expectIdenticalHistory(const std::vector<al::IterationRecord>& a,
                            const std::vector<al::IterationRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].chosenRow, b[i].chosenRow) << "iter " << i;
    EXPECT_EQ(a[i].sigmaAtPick, b[i].sigmaAtPick) << "iter " << i;
    EXPECT_EQ(a[i].muAtPick, b[i].muAtPick) << "iter " << i;
    EXPECT_EQ(a[i].amsd, b[i].amsd) << "iter " << i;
    EXPECT_EQ(a[i].rmse, b[i].rmse) << "iter " << i;
    EXPECT_EQ(a[i].noiseVariance, b[i].noiseVariance) << "iter " << i;
    EXPECT_EQ(a[i].lml, b[i].lml) << "iter " << i;
  }
}

}  // namespace

// ---------------------------------------------------------------- grammar

TEST(FaultSpec, ParsesSingleFaultWithCondition) {
  const auto specs = FaultInjector::parse("gram.nan@iter=7");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].site, "gram.nan");
  EXPECT_EQ(specs[0].match.iter, 7);
  EXPECT_EQ(specs[0].match.n, -1);
  EXPECT_EQ(specs[0].match.eval, -1);
  EXPECT_EQ(specs[0].match.start, -1);
  EXPECT_EQ(specs[0].match.attempt, -1);
  EXPECT_EQ(specs[0].match.opt, -1);
}

TEST(FaultSpec, ParsesMultipleFaultsAndConditions) {
  const auto specs =
      FaultInjector::parse("chol.fail@n=256,attempt=0;lml.inf@eval=3 grad.nan");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].site, "chol.fail");
  EXPECT_EQ(specs[0].match.n, 256);
  EXPECT_EQ(specs[0].match.attempt, 0);
  EXPECT_EQ(specs[1].site, "lml.inf");
  EXPECT_EQ(specs[1].match.eval, 3);
  EXPECT_EQ(specs[2].site, "grad.nan");
  EXPECT_EQ(specs[2].match.iter, -1);
}

TEST(FaultSpec, EmptySpecDisarms) {
  EXPECT_TRUE(FaultInjector::parse("").empty());
  EXPECT_TRUE(FaultInjector::parse("  \t ").empty());
  auto& inj = FaultInjector::instance();
  inj.arm("gram.nan");
  EXPECT_TRUE(inj.armed());
  ASSERT_EQ(inj.armedSpecs().size(), 1u);
  EXPECT_EQ(inj.armedSpecs()[0].site, "gram.nan");
  inj.arm("");
  EXPECT_FALSE(inj.armed());
  EXPECT_TRUE(inj.armedSpecs().empty());
}

TEST(FaultSpec, GrammarErrorsThrow) {
  EXPECT_THROW(FaultInjector::parse("@iter=1"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("gram.nan@bogus=1"),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("gram.nan@iter=x"),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("gram.nan@iter=-2"),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("gram.nan@"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("gram.nan@iter"), std::invalid_argument);
  // A typo'd site would arm and then silently never fire.
  EXPECT_THROW(FaultInjector::parse("chol.fial"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("bogus.site@iter=1"),
               std::invalid_argument);
}

TEST(FaultSpec, FirePredicatesMatchAttributes) {
  FaultGuard guard("chol.fail@n=8,attempt=1");
  auto& inj = FaultInjector::instance();
  FaultAttrs hit;
  hit.n = 8;
  hit.attempt = 1;
  FaultAttrs wrongN = hit;
  wrongN.n = 9;
  FaultAttrs wrongAttempt = hit;
  wrongAttempt.attempt = 0;
  const auto before = counter("fault.injected.chol.fail");
  EXPECT_FALSE(inj.fire("chol.fail", wrongN));
  EXPECT_FALSE(inj.fire("chol.fail", wrongAttempt));
  EXPECT_FALSE(inj.fire("gram.nan", hit));  // different site
  EXPECT_TRUE(inj.fire("chol.fail", hit));
  EXPECT_EQ(counter("fault.injected.chol.fail") - before, 1u);
}

// ------------------------------------------------------ unarmed baseline

TEST(ChaosRecovery, UnarmedCampaignInjectsNothing) {
  FaultInjector::instance().disarm();
  ASSERT_FALSE(FaultInjector::instance().armed());
  const auto injectedBefore = counter("fault.injected");
  const auto priorBefore = counter("health.fit.fallback.prior");
  const auto result = runCampaign(11);
  EXPECT_EQ(result.stopReason, al::StopReason::MaxIterations);
  EXPECT_EQ(counter("fault.injected") - injectedBefore, 0u);
  EXPECT_EQ(counter("health.fit.fallback.prior") - priorBefore, 0u);
  EXPECT_EQ(result.fitFallbacks, 0);
}

// --------------------------------------------------- Cholesky-level rungs

TEST(ChaosRecovery, CholFailAttemptZeroRecoversWithJitter) {
  const auto before = counter("health.chol.recovered");
  FaultGuard guard("chol.fail@attempt=0");
  const la::Cholesky chol(makeSpd(6));
  EXPECT_GT(chol.jitter(), 0.0);
  const auto ev = chol.recovery();
  EXPECT_EQ(ev.status, la::CholeskyStatus::RecoveredWithJitter);
  EXPECT_GE(ev.attempts, 2);
  EXPECT_EQ(ev.finalJitter, chol.jitter());
  EXPECT_GT(ev.rcond, 0.0);  // computed eagerly on recovery
  EXPECT_EQ(counter("health.chol.recovered") - before, 1u);
}

TEST(ChaosRecovery, CholFailUnconditionalExhaustsJitterLadder) {
  const auto before = counter("health.chol.failed");
  FaultGuard guard("chol.fail");
  EXPECT_THROW(la::Cholesky{makeSpd(4)}, alperf::NumericalError);
  EXPECT_EQ(counter("health.chol.failed") - before, 1u);
}

TEST(ChaosRecovery, ExtendFailContainedAndRecorded) {
  la::Cholesky chol(makeSpd(4));
  const la::Vector k(4, 0.0);
  const auto before = counter("health.chol.extend");
  {
    FaultGuard guard("extend.fail");
    EXPECT_THROW(chol.extend(k, 10.0), alperf::NumericalError);
  }
  EXPECT_EQ(counter("health.chol.extend") - before, 1u);
  // Disarmed, the same extension succeeds: the factor was not corrupted.
  EXPECT_NO_THROW(chol.extend(k, 10.0));
  EXPECT_EQ(chol.dim(), 5u);
}

// ------------------------------------------------- campaign-level ladder

TEST(ChaosRecovery, CholFailOptimizingFitWalksRetryAndThetaFallback) {
  const auto retryBefore = counter("health.fit.retry");
  const auto thetaBefore = counter("health.fit.fallback.theta");
  const auto priorBefore = counter("health.fit.fallback.prior");
  FaultGuard guard("chol.fail@iter=2,opt=1");
  const auto result = runCampaign(11);
  // The poisoned iteration exhausts rungs 1-2 (both optimize, opt=1) and
  // lands on the rung-3 posterior-only refit, which the spec spares.
  EXPECT_EQ(result.stopReason, al::StopReason::MaxIterations);
  EXPECT_EQ(result.history.size(), 6u);
  EXPECT_GE(result.fitFallbacks, 1);
  EXPECT_GE(counter("health.fit.retry") - retryBefore, 1u);
  EXPECT_GE(counter("health.fit.fallback.theta") - thetaBefore, 1u);
  EXPECT_EQ(counter("health.fit.fallback.prior") - priorBefore, 0u);
}

TEST(ChaosRecovery, GramNanSingleIterationFallsBackToPriorAndRecovers) {
  const auto priorBefore = counter("health.fit.fallback.prior");
  const auto unhealthyBefore = counter("health.model.unhealthy");
  FaultGuard guard("gram.nan@iter=2");
  const auto result = runCampaign(11);
  // Every rung that factorizes sees the poisoned gram, so iteration 2
  // degrades to the prior; the next iteration's clean refit recovers.
  EXPECT_EQ(result.stopReason, al::StopReason::MaxIterations);
  EXPECT_EQ(result.history.size(), 6u);
  EXPECT_GE(counter("health.fit.fallback.prior") - priorBefore, 1u);
  EXPECT_EQ(counter("health.model.unhealthy") - unhealthyBefore, 0u);
}

TEST(ChaosRecovery, PersistentGramNanStopsModelUnhealthy) {
  const auto unhealthyBefore = counter("health.model.unhealthy");
  const auto priorBefore = counter("health.fit.fallback.prior");
  FaultGuard guard("gram.nan");
  al::AlConfig cfg;
  cfg.maxIterations = 10;
  const auto result = runCampaign(11, cfg);
  // maxConsecutiveDegraded = 2 (default): iterations 0 and 1 run
  // prior-only and are recorded; the third degraded fit stops the
  // campaign before recording. The prior rung fires for those three
  // in-loop fits plus the final post-loop fit.
  EXPECT_EQ(result.stopReason, al::StopReason::ModelUnhealthy);
  EXPECT_EQ(result.history.size(), 2u);
  EXPECT_EQ(counter("health.model.unhealthy") - unhealthyBefore, 1u);
  EXPECT_EQ(counter("health.fit.fallback.prior") - priorBefore, 4u);
}

TEST(ChaosRecovery, WatchdogStopsImmediately) {
  const auto before = counter("health.watchdog");
  al::AlConfig cfg;
  cfg.wallClockBudgetSec = 0.0;
  const auto result = runCampaign(11, cfg);
  EXPECT_EQ(result.stopReason, al::StopReason::WatchdogExpired);
  EXPECT_TRUE(result.history.empty());
  EXPECT_EQ(counter("health.watchdog") - before, 1u);
}

TEST(ChaosRecovery, LmlInfContainedAndFitRejected) {
  const auto lmlBefore = counter("health.lml.nonfinite");
  const auto rejectedBefore = counter("health.fit.rejected");
  const auto startBefore = counter("opt.start.nonfinite");
  FaultGuard guard("lml.inf");
  const auto result = runCampaign(11);
  // Every optimizer evaluation is contained to -inf, so each fit is
  // rejected and keeps the previous hyperparameters — but the posterior
  // itself stays healthy and the campaign completes.
  EXPECT_EQ(result.stopReason, al::StopReason::MaxIterations);
  EXPECT_EQ(result.history.size(), 6u);
  EXPECT_EQ(result.fitFallbacks, 0);
  EXPECT_GE(counter("health.lml.nonfinite") - lmlBefore, 1u);
  EXPECT_GE(counter("health.fit.rejected") - rejectedBefore, 1u);
  EXPECT_GE(counter("opt.start.nonfinite") - startBefore, 1u);
}

TEST(ChaosRecovery, GradNanContained) {
  const auto before = counter("health.grad.nonfinite");
  FaultGuard guard("grad.nan");
  const auto result = runCampaign(11);
  EXPECT_EQ(result.stopReason, al::StopReason::MaxIterations);
  EXPECT_EQ(result.history.size(), 6u);
  EXPECT_GE(counter("health.grad.nonfinite") - before, 1u);
}

TEST(ChaosRecovery, ThetaNanRejectedKeepsModelAlive) {
  const auto thetaBefore = counter("health.theta.nonfinite");
  const auto rejectedBefore = counter("health.fit.rejected");
  FaultGuard guard("theta.nan");
  const auto result = runCampaign(11);
  EXPECT_EQ(result.stopReason, al::StopReason::MaxIterations);
  EXPECT_EQ(result.history.size(), 6u);
  EXPECT_TRUE(result.finalGp.fitted());
  EXPECT_GE(counter("health.theta.nonfinite") - thetaBefore, 1u);
  EXPECT_GE(counter("health.fit.rejected") - rejectedBefore, 1u);
}

TEST(ChaosRecovery, ContinuousLoopSurvivesExtendFail) {
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-3;
  gp::GaussianProcess proto(gp::makeSquaredExponential(1.0, 1.0), cfg);
  la::Matrix seedX(3, 1);
  la::Vector seedY(3);
  for (std::size_t i = 0; i < 3; ++i) {
    seedX(i, 0) = static_cast<double>(i) * 3.0;
    seedY[i] = std::sin(seedX(i, 0));
  }
  al::ContinuousAlConfig alCfg;
  alCfg.iterations = 6;
  alCfg.nStarts = 3;
  alCfg.refitEvery = 3;  // incremental extensions between refits
  const auto extendBefore = counter("health.chol.extend");
  FaultGuard guard("extend.fail");
  Rng rng(4);
  const auto result = al::runContinuousAl(
      proto, seedX, seedY, opt::BoxBounds({0.0}, {8.0}),
      [](std::span<const double> x) { return std::sin(x[0]); },
      al::varianceAcquisition(), alCfg, rng);
  // Every incremental update fails and falls back to a full posterior
  // rebuild; the campaign itself completes.
  EXPECT_EQ(result.stopReason, al::StopReason::MaxIterations);
  EXPECT_EQ(result.history.size(), 6u);
  EXPECT_GE(result.fitFallbacks, 1);
  EXPECT_GE(counter("health.chol.extend") - extendBefore, 1u);
}

// --------------------------------------------------------- determinism

TEST(ChaosRecovery, TraceBitIdenticalOnceDisarmed) {
  FaultInjector::instance().disarm();
  const auto baseline = runCampaign(17);
  {
    FaultGuard guard("gram.nan@iter=1");
    const auto armed = runCampaign(17);
    EXPECT_EQ(armed.history.size(), baseline.history.size());
  }
  // A fresh same-seed run after disarm must reproduce the never-armed
  // trace exactly — injection leaves no residue in any global state.
  const auto after = runCampaign(17);
  expectIdenticalHistory(baseline.history, after.history);
}

TEST(ChaosRecovery, ArmedCampaignDeterministicAcrossThreadCounts) {
  ThreadGuard threads;
  FaultGuard guard("gram.nan@iter=2");
  Parallelism::setThreads(1);
  const auto seq = runCampaign(13);
  Parallelism::setThreads(4);
  const auto par = runCampaign(13);
  EXPECT_EQ(seq.stopReason, par.stopReason);
  EXPECT_EQ(seq.fitFallbacks, par.fitFallbacks);
  expectIdenticalHistory(seq.history, par.history);
}

// ------------------------------------------------------------ health ring

TEST(HealthRing, KeepsMostRecentIncidentsWithMonotoneSeq) {
  auto& mon = HealthMonitor::instance();
  mon.reset();
  FaultContext::setIteration(5);
  for (int i = 0; i < 100; ++i)
    mon.record("test.ring", "incident " + std::to_string(i));
  FaultContext::setIteration(-1);
  EXPECT_EQ(mon.total(), 100u);
  const auto recent = mon.recent();
  ASSERT_EQ(recent.size(), HealthMonitor::kRingCapacity);
  EXPECT_EQ(recent.front().seq, 100u - HealthMonitor::kRingCapacity + 1);
  EXPECT_EQ(recent.back().seq, 100u);
  for (std::size_t i = 1; i < recent.size(); ++i)
    EXPECT_EQ(recent[i].seq, recent[i - 1].seq + 1);
  EXPECT_EQ(recent.front().kind, "test.ring");
  EXPECT_EQ(recent.front().iteration, 5);
  const std::string report = mon.report();
  EXPECT_NE(report.find("test.ring"), std::string::npos);
  mon.reset();
  EXPECT_TRUE(mon.recent().empty());
  EXPECT_EQ(mon.total(), 0u);
}

// ---------------------------------------------------- multi-start discard

TEST(MultiStartChaos, NonFiniteStartsDiscarded) {
  const opt::BoxBounds bounds({0.0}, {1.0});
  const auto runStart = [](std::size_t start,
                           std::span<const double> x0) {
    opt::OptResult r;
    r.x.assign(x0.begin(), x0.end());
    if (start == 0)
      r.fval = std::numeric_limits<double>::quiet_NaN();
    else if (start == 1)
      r.fval = std::numeric_limits<double>::infinity();
    else
      r.fval = static_cast<double>(start);  // finite: 2, 3
    return r;
  };
  const auto before = counter("opt.start.nonfinite");
  Rng rng(2);
  const std::vector<double> x0{0.5};
  const auto result =
      opt::multiStartMinimizeParallel(runStart, x0, bounds, 3, rng);
  EXPECT_DOUBLE_EQ(result.best.fval, 2.0);
  EXPECT_EQ(counter("opt.start.nonfinite") - before, 2u);
}

TEST(MultiStartChaos, AllNonFiniteFallsBackToFirstStart) {
  const opt::BoxBounds bounds({0.0}, {1.0});
  const auto runStart = [](std::size_t, std::span<const double> x0) {
    opt::OptResult r;
    r.x.assign(x0.begin(), x0.end());
    r.fval = std::numeric_limits<double>::quiet_NaN();
    return r;
  };
  const auto before = counter("opt.start.nonfinite");
  Rng rng(2);
  const std::vector<double> x0{0.5};
  const auto result =
      opt::multiStartMinimizeParallel(runStart, x0, bounds, 2, rng);
  EXPECT_TRUE(std::isnan(result.best.fval));
  EXPECT_EQ(counter("opt.start.nonfinite") - before, 3u);
}
