// DistanceCache invalidation-contract tests: append vs rebuild detection,
// theta-independence (hyperparameter changes never invalidate), cached
// kernel evaluations matching the uncached path, and end-to-end GP fits
// agreeing with the cache disabled.

#include "gp/distance_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>

#include "common/perf_stats.hpp"
#include "gp/gp.hpp"
#include "gp/kernels.hpp"
#include "stats/rng.hpp"

namespace gp = alperf::gp;
namespace la = alperf::la;
using alperf::PerfRegistry;
using alperf::stats::Rng;

namespace {

la::Matrix randomPoints(std::size_t n, std::size_t d, unsigned seed) {
  Rng rng(seed);
  la::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t m = 0; m < d; ++m)
      x(i, m) = rng.uniformReal(-2.0, 2.0);
  return x;
}

la::Vector smoothResponse(const la::Matrix& x) {
  la::Vector y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double s = 0.0;
    for (std::size_t m = 0; m < x.cols(); ++m)
      s += std::sin(x(i, m)) + 0.3 * x(i, m);
    y[i] = s;
  }
  return y;
}

std::uint64_t counter(const char* name) {
  return PerfRegistry::instance().count(name);
}

}  // namespace

TEST(DistanceCache, StoresExactPairwiseGeometry) {
  const la::Matrix x = randomPoints(17, 3, 1);
  gp::DistanceCache cache;
  cache.sync(x);

  ASSERT_TRUE(cache.matches(x));
  ASSERT_EQ(cache.numPoints(), 17u);
  ASSERT_EQ(cache.numPairs(), 17u * 16u / 2u);
  const la::Vector& sq = cache.squaredDistances();
  const la::Vector& sqd = cache.squaredDiffs();
  for (std::size_t j = 1; j < 17; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const std::size_t p = gp::DistanceCache::pairIndex(i, j);
      double want = 0.0;
      for (std::size_t m = 0; m < 3; ++m) {
        const double dm = x(i, m) - x(j, m);
        EXPECT_DOUBLE_EQ(sqd[p * 3 + m], dm * dm);
        want += dm * dm;
      }
      EXPECT_NEAR(sq[p], want, 1e-15 * (want + 1.0));
    }
  }
}

TEST(DistanceCache, SyncDetectsAppendVsRebuild) {
  PerfRegistry::instance().reset();
  const la::Matrix x = randomPoints(10, 2, 2);
  gp::DistanceCache cache;

  cache.sync(x);  // cold build counts as a rebuild
  EXPECT_EQ(counter("gp.distcache.rebuild"), 1u);
  EXPECT_EQ(counter("gp.distcache.append"), 0u);

  cache.sync(x);  // bitwise match → no-op
  EXPECT_EQ(counter("gp.distcache.rebuild"), 1u);
  EXPECT_EQ(counter("gp.distcache.append"), 0u);

  // Extend by two rows, keeping the prefix bit-identical → append path.
  la::Matrix extended(12, 2);
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t m = 0; m < 2; ++m) extended(i, m) = x(i, m);
  extended(10, 0) = 0.5;
  extended(10, 1) = -1.5;
  extended(11, 0) = 1.25;
  extended(11, 1) = 0.75;
  cache.sync(extended);
  EXPECT_EQ(counter("gp.distcache.append"), 1u);
  EXPECT_EQ(counter("gp.distcache.rebuild"), 1u);
  EXPECT_TRUE(cache.matches(extended));
  EXPECT_EQ(cache.numPairs(), 12u * 11u / 2u);

  // Appended pairs are correct, not just present.
  const std::size_t p = gp::DistanceCache::pairIndex(3, 11);
  double want = 0.0;
  for (std::size_t m = 0; m < 2; ++m) {
    const double dm = extended(3, m) - extended(11, m);
    want += dm * dm;
  }
  EXPECT_NEAR(cache.squaredDistances()[p], want, 1e-15);

  // Mutating an interior point breaks the prefix → full rebuild.
  la::Matrix mutated = extended;
  mutated(4, 1) += 1e-9;
  cache.sync(mutated);
  EXPECT_EQ(counter("gp.distcache.rebuild"), 2u);
  EXPECT_TRUE(cache.matches(mutated));
  EXPECT_FALSE(cache.matches(extended));
}

TEST(DistanceCache, ThetaChangesNeverInvalidate) {
  const la::Matrix x = randomPoints(20, 2, 3);
  gp::DistanceCache cache;
  cache.sync(x);

  // Evaluate the same cache under wildly different hyperparameters; it
  // stays valid (distances are theta-independent) and each cached gram
  // matches its uncached counterpart.
  for (const double l : {0.1, 1.0, 7.5}) {
    const auto k = gp::makeSquaredExponential(2.0, l);
    ASSERT_TRUE(cache.matches(x));
    const la::Matrix cached = k->gram(x, cache);
    const la::Matrix plain = k->gram(x);
    for (std::size_t i = 0; i < 20; ++i)
      for (std::size_t j = 0; j < 20; ++j)
        EXPECT_NEAR(cached(i, j), plain(i, j),
                    1e-14 * (std::abs(plain(i, j)) + 1.0));
  }
  EXPECT_TRUE(cache.matches(x));
}

TEST(DistanceCache, CachedGramGradientsMatchUncached) {
  const la::Matrix x = randomPoints(15, 3, 4);
  gp::DistanceCache cache;
  cache.sync(x);
  const auto k =
      gp::makeSquaredExponentialArd(1.5, {0.8, 1.2, 2.0});

  const la::Matrix km = k->gram(x, cache);
  std::vector<la::Matrix> cachedGrads;
  k->gramGradients(x, km, cache, cachedGrads);
  std::vector<la::Matrix> plainGrads;
  k->gramGradients(x, k->gram(x), plainGrads);

  ASSERT_EQ(cachedGrads.size(), plainGrads.size());
  for (std::size_t g = 0; g < cachedGrads.size(); ++g)
    for (std::size_t i = 0; i < 15; ++i)
      for (std::size_t j = 0; j < 15; ++j)
        EXPECT_NEAR(cachedGrads[g](i, j), plainGrads[g](i, j),
                    1e-12 * (std::abs(plainGrads[g](i, j)) + 1.0))
            << "grad " << g << " (" << i << "," << j << ")";
}

TEST(DistanceCache, MismatchedCacheFallsBackToUncached) {
  const la::Matrix x = randomPoints(12, 2, 5);
  const la::Matrix other = randomPoints(12, 2, 6);
  gp::DistanceCache cache;
  cache.sync(other);  // deliberately stale for x

  const auto k = gp::makeSquaredExponential(1.0, 1.0);
  const la::Matrix viaCache = k->gram(x, cache);  // must ignore the cache
  const la::Matrix plain = k->gram(x);
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = 0; j < 12; ++j)
      EXPECT_DOUBLE_EQ(viaCache(i, j), plain(i, j));
}

TEST(DistanceCache, GpFitMatchesUncachedPath) {
  // Golden test at frozen hyperparameters. The cached gram differs from
  // the uncached one only in last-bit rounding (s = Σd² · l⁻² vs
  // Σ(d/l)²); a free hyperparameter search amplifies that into a
  // different-but-equally-good optimum, so the contract is pinned where
  // it is well defined: identical theta in → identical model out.
  const la::Matrix x = randomPoints(40, 2, 7);
  const la::Vector y = smoothResponse(x);

  const auto runFit = [&](bool useCache) {
    gp::GpConfig cfg;
    cfg.optimize = false;
    cfg.noise.lo = 1e-2;
    cfg.noise.initial = 1e-2;
    cfg.useDistanceCache = useCache;
    gp::GaussianProcess model(
        gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}), cfg);
    Rng rng(99);
    model.fit(x, y, rng);
    return model;
  };
  const gp::GaussianProcess cached = runFit(true);
  const gp::GaussianProcess plain = runFit(false);

  EXPECT_NEAR(cached.logMarginalLikelihood(), plain.logMarginalLikelihood(),
              1e-10 * (std::abs(plain.logMarginalLikelihood()) + 1.0));

  const la::Matrix xs = randomPoints(8, 2, 8);
  const auto pc = cached.predict(xs);
  const auto pp = plain.predict(xs);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(pc.mean[i], pp.mean[i], 1e-10 * (std::abs(pp.mean[i]) + 1.0));
    EXPECT_NEAR(pc.variance[i], pp.variance[i],
                1e-10 * (pp.variance[i] + 1.0));
  }

  // The quantities the optimizer consumes agree at every theta it could
  // visit, cached or not.
  const std::vector<double> probes[] = {
      {0.0, 0.0, 0.0, std::log(1e-2)},
      {0.7, -0.3, 0.4, std::log(5e-2)},
      {-0.5, 0.8, -0.2, std::log(2e-2)}};
  for (const auto& theta : probes) {
    const double lc = cached.logMarginalLikelihoodAt(theta);
    const double lp = plain.logMarginalLikelihoodAt(theta);
    EXPECT_NEAR(lc, lp, 1e-10 * (std::abs(lp) + 1.0));
    const auto gc = cached.logMarginalLikelihoodGradientAt(theta);
    const auto gpd = plain.logMarginalLikelihoodGradientAt(theta);
    ASSERT_EQ(gc.size(), gpd.size());
    for (std::size_t i = 0; i < gc.size(); ++i)
      EXPECT_NEAR(gc[i], gpd[i], 1e-9 * (std::abs(gpd[i]) + 1.0));
  }
}

TEST(DistanceCache, AddObservationKeepsCacheWarm) {
  PerfRegistry::instance().reset();
  const la::Matrix x = randomPoints(25, 2, 9);
  const la::Vector y = smoothResponse(x);

  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  gp::GaussianProcess model(
      gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}), cfg);
  Rng rng(5);
  model.fit(x, y, rng);
  const std::uint64_t rebuildsAfterFit = counter("gp.distcache.rebuild");
  EXPECT_GE(counter("gp.gram.hit"), 1u);

  // Growing the train set one point at a time must take the append path;
  // no further rebuilds.
  const double p0[] = {0.3, -0.7};
  const double p1[] = {-1.1, 0.4};
  model.addObservation(std::span<const double>(p0, 2), 0.5);
  model.addObservation(std::span<const double>(p1, 2), -0.25);
  EXPECT_EQ(counter("gp.distcache.append"), 2u);
  EXPECT_EQ(counter("gp.distcache.rebuild"), rebuildsAfterFit);

  // A refit on the bit-identical grown set starts from a matching cache:
  // still no rebuild (this is exactly the AL-loop refit pattern).
  la::Matrix grown(27, 2);
  la::Vector grownY(27);
  for (std::size_t i = 0; i < 25; ++i) {
    grown(i, 0) = x(i, 0);
    grown(i, 1) = x(i, 1);
    grownY[i] = y[i];
  }
  grown(25, 0) = p0[0];
  grown(25, 1) = p0[1];
  grownY[25] = 0.5;
  grown(26, 0) = p1[0];
  grown(26, 1) = p1[1];
  grownY[26] = -0.25;
  model.fit(grown, grownY, rng);
  EXPECT_EQ(counter("gp.distcache.rebuild"), rebuildsAfterFit);
}
