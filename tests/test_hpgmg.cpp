// Tests for the mini-HPGMG solver: field ops, stencil construction and
// symmetry, multigrid convergence (the key property: grid-independent
// V-cycle contraction), FMG accuracy, and discretization order.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "hpgmg/benchmark.hpp"
#include "hpgmg/multigrid.hpp"

namespace hp = alperf::hpgmg;
using hp::Field;
using hp::Multigrid;
using hp::Stencil;
using hp::StencilType;

namespace {

constexpr double kPi = std::numbers::pi;

double exactU(double x, double y, double z) {
  return std::sin(kPi * x) * std::sin(kPi * y) * std::sin(kPi * z);
}

}  // namespace

TEST(Field, ConstructionAndIndexing) {
  Field f(7);
  EXPECT_EQ(f.n(), 7);
  EXPECT_DOUBLE_EQ(f.h(), 1.0 / 8.0);
  EXPECT_EQ(f.interiorPoints(), 343u);
  f.at(1, 1, 1) = 3.0;
  EXPECT_DOUBLE_EQ(f.at(1, 1, 1), 3.0);
  EXPECT_DOUBLE_EQ(f.at(0, 0, 0), 0.0);  // halo starts zero
  EXPECT_THROW(Field(0), std::invalid_argument);
}

TEST(Field, NormsAndAxpy) {
  Field f(3);
  hp::setInterior(f, [](double, double, double) { return 2.0; });
  EXPECT_DOUBLE_EQ(f.normInf(), 2.0);
  // L2: sqrt(sum(4) * h³) = sqrt(27*4/64) = sqrt(108/64).
  EXPECT_NEAR(f.normL2(), std::sqrt(27.0 * 4.0 / 64.0), 1e-12);
  Field g(3);
  hp::setInterior(g, [](double, double, double) { return 1.0; });
  f.axpy(-2.0, g);
  EXPECT_NEAR(f.normInf(), 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(f.dotInterior(g), 0.0);
}

TEST(Field, SetInteriorUsesCoordinates) {
  Field f(3);
  hp::setInterior(f, [](double x, double, double) { return x; });
  EXPECT_DOUBLE_EQ(f.at(1, 2, 2), 0.25);
  EXPECT_DOUBLE_EQ(f.at(3, 1, 1), 0.75);
}

TEST(Stencil, Poisson1Weights) {
  const Stencil s(StencilType::Poisson1, 0.5);
  EXPECT_DOUBLE_EQ(s.weight(0, 0, 0), 24.0);  // 6/h²
  EXPECT_DOUBLE_EQ(s.weight(1, 0, 0), -4.0);
  EXPECT_DOUBLE_EQ(s.weight(1, 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(s.diagonal(), 24.0);
  EXPECT_DOUBLE_EQ(s.flopsPerPoint(), 14.0);
}

TEST(Stencil, Poisson2IsWideStencil) {
  // The Q1-FEM-style Laplacian K⊗M⊗M + M⊗K⊗M + M⊗M⊗K famously has zero
  // face weights in 3D: 21 nonzeros (center + 12 edges + 8 corners).
  const Stencil s(StencilType::Poisson2, 0.25);
  int nnz = 0;
  for (int a = -1; a <= 1; ++a)
    for (int b = -1; b <= 1; ++b)
      for (int c = -1; c <= 1; ++c)
        if (s.weight(a, b, c) != 0.0) ++nnz;
  EXPECT_EQ(nnz, 21);
  EXPECT_NEAR(s.weight(1, 0, 0), 0.0, 1e-12);  // face weights cancel
  EXPECT_GT(s.flopsPerPoint(), 40.0);  // vs 14 for the 7-point operator
  // The affine variant's cross terms repopulate the faces.
  const Stencil sa(StencilType::Poisson2Affine, 0.25);
  int nnzA = 0;
  for (int a = -1; a <= 1; ++a)
    for (int b = -1; b <= 1; ++b)
      for (int c = -1; c <= 1; ++c)
        if (sa.weight(a, b, c) != 0.0) ++nnzA;
  EXPECT_GT(nnzA, 21);
}

TEST(Stencil, SymmetricWeights) {
  for (auto type : {StencilType::Poisson1, StencilType::Poisson2,
                    StencilType::Poisson2Affine}) {
    const Stencil s(type, 0.125);
    for (int a = -1; a <= 1; ++a)
      for (int b = -1; b <= 1; ++b)
        for (int c = -1; c <= 1; ++c)
          EXPECT_DOUBLE_EQ(s.weight(a, b, c), s.weight(-a, -b, -c))
              << "type " << static_cast<int>(type);
  }
}

TEST(Stencil, AnnihilatesConstantsUpToBoundary) {
  // Away from the boundary, A·1 = 0 for a consistent Laplacian stencil.
  for (auto type : {StencilType::Poisson1, StencilType::Poisson2,
                    StencilType::Poisson2Affine}) {
    Field u(7);
    u.fill(1.0);  // including halo → no boundary effect at interior center
    Field out(7);
    const Stencil s(type, u.h());
    s.apply(u, out);
    EXPECT_NEAR(out.at(4, 4, 4), 0.0, 1e-10)
        << "type " << static_cast<int>(type);
  }
}

TEST(Stencil, Poisson1MatchesAnalyticLaplacian) {
  // For u = sin(πx)sin(πy)sin(πz), -Δu = 3π²u; the 7-point stencil
  // converges to it at O(h²).
  const auto errorAt = [](int n) {
    Field u(n);
    hp::setInterior(u, exactU);
    Field out(n);
    const Stencil s(StencilType::Poisson1, u.h());
    s.apply(u, out);
    double maxErr = 0.0;
    for (int i = 1; i <= n; ++i)
      for (int j = 1; j <= n; ++j)
        for (int k = 1; k <= n; ++k) {
          const double expect =
              3.0 * kPi * kPi * exactU(u.coord(i), u.coord(j), u.coord(k));
          maxErr = std::max(maxErr, std::abs(out.at(i, j, k) - expect));
        }
    return maxErr;
  };
  const double e1 = errorAt(15);
  const double e2 = errorAt(31);
  EXPECT_NEAR(e1 / e2, 4.0, 0.8);  // O(h²)
}

TEST(Stencil, ResidualOfExactSolveIsZero) {
  Field x(7), b(7), r(7);
  hp::setInterior(x, exactU);
  const Stencil s(StencilType::Poisson2, x.h());
  s.apply(x, b);
  s.residual(x, b, r);
  EXPECT_NEAR(r.normInf(), 0.0, 1e-12);
}

TEST(Stencil, GershgorinBoundSane) {
  for (auto type : {StencilType::Poisson1, StencilType::Poisson2,
                    StencilType::Poisson2Affine}) {
    const Stencil s(type, 0.1);
    EXPECT_GT(s.gershgorinBound(), 1.0);
    EXPECT_LT(s.gershgorinBound(), 3.0);
  }
}

TEST(Multigrid, RequiresPow2Minus1) {
  EXPECT_THROW(Multigrid(StencilType::Poisson1, 8), std::invalid_argument);
  EXPECT_NO_THROW(Multigrid(StencilType::Poisson1, 7));
}

TEST(Multigrid, LevelCount) {
  Multigrid mg(StencilType::Poisson1, 31);
  // 31 → 15 → 7 → 3.
  EXPECT_EQ(mg.numLevels(), 4);
  EXPECT_EQ(mg.finestN(), 31);
  EXPECT_GT(mg.totalDof(), 31u * 31u * 31u);
}

TEST(Multigrid, VcycleContractsResidual) {
  // The defining multigrid property: a V-cycle reduces the residual by a
  // grid-independent factor well below 1.
  for (int n : {15, 31}) {
    Multigrid mg(StencilType::Poisson1, n);
    Field b(n), x(n);
    hp::setInterior(b, [](double px, double py, double pz) {
      return 3.0 * kPi * kPi * exactU(px, py, pz);
    });
    auto stats = mg.solve(b, x);
    EXPECT_TRUE(stats.converged) << "n=" << n;
    EXPECT_LT(stats.meanReduction(), 0.25) << "n=" << n;
  }
}

TEST(Multigrid, SolveRecoversManufacturedDiscreteSolution) {
  // b = A·u_exact ⇒ solver must recover u_exact to solver tolerance,
  // independent of discretization error. Checks all three operators.
  for (auto type : {StencilType::Poisson1, StencilType::Poisson2,
                    StencilType::Poisson2Affine}) {
    const int n = 15;
    Field uStar(n);
    hp::setInterior(uStar, exactU);
    Multigrid mg(type, n);
    Field b(n);
    mg.stencil(0).apply(uStar, b);
    Field x(n);
    const auto stats = mg.solve(b, x);
    EXPECT_TRUE(stats.converged) << "type " << static_cast<int>(type);
    x.axpy(-1.0, uStar);
    EXPECT_LT(x.normInf(), 1e-6) << "type " << static_cast<int>(type);
  }
}

TEST(Multigrid, JacobiSmootherAlsoConverges) {
  hp::MgOptions opt;
  opt.smoother = hp::SmootherType::WeightedJacobi;
  opt.preSmooth = 3;
  opt.postSmooth = 3;
  Multigrid mg(StencilType::Poisson1, 15, opt);
  Field b(15), x(15);
  hp::setInterior(b, [](double px, double py, double pz) {
    return 3.0 * kPi * kPi * exactU(px, py, pz);
  });
  const auto stats = mg.solve(b, x);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(stats.meanReduction(), 0.5);
}

TEST(Multigrid, RedBlackGaussSeidelConverges) {
  hp::MgOptions opt;
  opt.smoother = hp::SmootherType::RedBlackGaussSeidel;
  Multigrid mg(StencilType::Poisson1, 15, opt);
  Field b(15), x(15);
  hp::setInterior(b, [](double px, double py, double pz) {
    return 3.0 * kPi * kPi * exactU(px, py, pz);
  });
  const auto stats = mg.solve(b, x);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(stats.meanReduction(), 0.35);
}

TEST(Multigrid, RedBlackBeatsJacobiPerSweep) {
  // Gauss-Seidel smooths roughly twice as fast as weighted Jacobi, so
  // the V-cycle contraction factor should be at least as good.
  const auto reductionWith = [](hp::SmootherType smoother) {
    hp::MgOptions opt;
    opt.smoother = smoother;
    opt.preSmooth = 2;
    opt.postSmooth = 2;
    Multigrid mg(StencilType::Poisson1, 15, opt);
    Field b(15), x(15);
    hp::setInterior(b, [](double px, double py, double pz) {
      return 3.0 * kPi * kPi * exactU(px, py, pz);
    });
    return mg.solve(b, x).meanReduction();
  };
  EXPECT_LE(reductionWith(hp::SmootherType::RedBlackGaussSeidel),
            reductionWith(hp::SmootherType::WeightedJacobi) + 0.02);
}

TEST(Multigrid, FmgReachesDiscretizationAccuracyOrder) {
  // FMG + polish solves; the discrete error vs the continuum solution
  // should drop ~4x per refinement (2nd-order operator).
  const auto discreteError = [](int n) {
    Multigrid mg(StencilType::Poisson1, n);
    Field b(n), x(n);
    hp::setInterior(b, [](double px, double py, double pz) {
      return 3.0 * kPi * kPi * exactU(px, py, pz);
    });
    mg.fmgSolve(b, x);
    Field uStar(n);
    hp::setInterior(uStar, exactU);
    x.axpy(-1.0, uStar);
    return x.normInf();
  };
  const double e15 = discreteError(15);
  const double e31 = discreteError(31);
  EXPECT_NEAR(e15 / e31, 4.0, 1.2);
}

TEST(Multigrid, SizeMismatchThrows) {
  Multigrid mg(StencilType::Poisson1, 7);
  Field wrong(15), x(7);
  EXPECT_THROW(mg.solve(wrong, x), std::invalid_argument);
}

TEST(Benchmark, RunsAndConverges) {
  const auto result = hp::runBenchmark(StencilType::Poisson1, 15);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_EQ(result.dof, 15u * 15u * 15u);
  EXPECT_GT(result.estimatedFlops, 0.0);
  EXPECT_LT(result.finalResidual, result.initialResidual);
}

TEST(Benchmark, GridSizeForDof) {
  EXPECT_EQ(hp::gridSizeForDof(1.0), 3);
  EXPECT_EQ(hp::gridSizeForDof(27.0), 3);
  EXPECT_EQ(hp::gridSizeForDof(28.0), 7);
  EXPECT_EQ(hp::gridSizeForDof(3000.0), 15);
  EXPECT_EQ(hp::gridSizeForDof(1e12, 63), 63);  // capped
  EXPECT_THROW(hp::gridSizeForDof(0.0), std::invalid_argument);
}

TEST(Benchmark, WiderStencilCostsMore) {
  const auto p1 = hp::runBenchmark(StencilType::Poisson1, 31);
  const auto p2 = hp::runBenchmark(StencilType::Poisson2, 31);
  EXPECT_GT(p2.estimatedFlops, p1.estimatedFlops);
}

// Parameterized: every operator converges on every tested grid size.
class MgConvergence
    : public ::testing::TestWithParam<std::tuple<StencilType, int>> {};

TEST_P(MgConvergence, SolveConverges) {
  const auto [type, n] = GetParam();
  Multigrid mg(type, n);
  Field b(n), x(n);
  hp::setInterior(b, [](double px, double py, double pz) {
    return std::sin(2.0 * kPi * px) * std::sin(kPi * py) *
           std::sin(3.0 * kPi * pz);
  });
  const auto stats = mg.solve(b, x);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(stats.finalResidual, 1e-8 * stats.initialResidual + 1e-14);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MgConvergence,
    ::testing::Combine(::testing::Values(StencilType::Poisson1,
                                         StencilType::Poisson2,
                                         StencilType::Poisson2Affine),
                       ::testing::Values(7, 15, 31)));
