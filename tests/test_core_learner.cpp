// Tests for the active-learning loop (core/learner.hpp) and the batch
// runner (core/batch.hpp): partition handling, stopping rules, progress
// metrics, and the paper's qualitative convergence behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/batch.hpp"
#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace gp = alperf::gp;
namespace la = alperf::la;
using alperf::stats::Rng;

namespace {

/// Noisy 1-D problem: y = sin(x) + 0.2x on a grid, cost = exp(y)-like.
al::RegressionProblem makeProblem(std::size_t n, std::uint64_t seed = 3,
                                  double noise = 0.02) {
  al::RegressionProblem p;
  p.x = la::Matrix(n, 1);
  p.y.resize(n);
  p.cost.resize(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = 10.0 * static_cast<double>(i) / (n - 1);
    p.x(i, 0) = x;
    p.y[i] = std::sin(x) + 0.2 * x + rng.normal(0.0, noise);
    p.cost[i] = std::pow(10.0, 0.2 * x);  // "runtime" cost, linear scale
  }
  p.featureNames = {"x"};
  p.responseName = "y";
  return p;
}

gp::GaussianProcess prototype(double noiseLo = 1e-6) {
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = noiseLo;
  cfg.noise.initial = std::max(1e-2, noiseLo);
  cfg.optStop.maxIterations = 40;
  return gp::GaussianProcess(gp::makeSquaredExponential(1.0, 1.0), cfg);
}

al::AlConfig fastConfig(int maxIter = 15) {
  al::AlConfig cfg;
  cfg.maxIterations = maxIter;
  return cfg;
}

}  // namespace

TEST(ActiveLearner, RunsAndRecordsHistory) {
  al::ActiveLearner learner(makeProblem(40), prototype(),
                            std::make_unique<al::VarianceReduction>(),
                            fastConfig(10));
  Rng rng(1);
  const auto result = learner.run(rng);
  EXPECT_EQ(result.stopReason, al::StopReason::MaxIterations);
  ASSERT_EQ(result.history.size(), 10u);
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    const auto& rec = result.history[i];
    EXPECT_EQ(rec.iteration, static_cast<int>(i));
    EXPECT_GT(rec.sigmaAtPick, 0.0);
    EXPECT_GT(rec.amsd, 0.0);
    EXPECT_GT(rec.rmse, 0.0);
    EXPECT_GT(rec.pickCost, 0.0);
  }
  // Cumulative cost is nondecreasing and consistent.
  double cum = 0.0;
  for (const auto& rec : result.history) {
    cum += rec.pickCost;
    EXPECT_NEAR(rec.cumulativeCost, cum, 1e-9);
  }
  EXPECT_TRUE(result.finalGp.fitted());
}

TEST(ActiveLearner, PartitionShapeMatchesConfig) {
  al::AlConfig cfg = fastConfig(3);
  cfg.nInitial = 2;
  cfg.activeFraction = 0.5;
  al::ActiveLearner learner(makeProblem(42), prototype(),
                            std::make_unique<al::VarianceReduction>(), cfg);
  Rng rng(2);
  const auto result = learner.run(rng);
  EXPECT_EQ(result.partition.initial.size(), 2u);
  EXPECT_EQ(result.partition.initial.size() + result.partition.active.size() +
                result.partition.test.size(),
            42u);
}

TEST(ActiveLearner, PoolExhaustion) {
  // Small pool, unlimited iterations → consume everything.
  al::AlConfig cfg;
  cfg.maxIterations = -1;
  al::ActiveLearner learner(makeProblem(12), prototype(),
                            std::make_unique<al::VarianceReduction>(), cfg);
  Rng rng(3);
  const auto result = learner.run(rng);
  EXPECT_EQ(result.stopReason, al::StopReason::PoolExhausted);
  EXPECT_EQ(result.history.size(), result.partition.active.size());
}

TEST(ActiveLearner, PicksComeFromActivePool) {
  al::ActiveLearner learner(makeProblem(30), prototype(),
                            std::make_unique<al::VarianceReduction>(),
                            fastConfig(8));
  Rng rng(4);
  const auto result = learner.run(rng);
  const std::set<std::size_t> active(result.partition.active.begin(),
                                     result.partition.active.end());
  std::set<std::size_t> picked;
  for (const auto& rec : result.history) {
    EXPECT_TRUE(active.count(rec.chosenRow)) << rec.chosenRow;
    EXPECT_TRUE(picked.insert(rec.chosenRow).second)
        << "row picked twice: " << rec.chosenRow;
  }
}

TEST(ActiveLearner, BudgetStops) {
  auto problem = makeProblem(40);
  al::AlConfig cfg;
  cfg.maxIterations = -1;
  cfg.costBudget = 15.0;
  al::ActiveLearner learner(problem, prototype(),
                            std::make_unique<al::VarianceReduction>(), cfg);
  Rng rng(5);
  const auto result = learner.run(rng);
  EXPECT_EQ(result.stopReason, al::StopReason::Budget);
  // The loop stops after first crossing the budget: the pre-final total
  // is under budget.
  ASSERT_GE(result.history.size(), 1u);
  if (result.history.size() >= 2) {
    EXPECT_LT(result.history[result.history.size() - 2].cumulativeCost, 15.0);
  }
}

TEST(ActiveLearner, AmsdConvergenceStops) {
  al::AlConfig cfg;
  cfg.maxIterations = -1;
  cfg.amsdWindow = 3;
  cfg.amsdRelTol = 0.5;  // loose → triggers quickly
  al::ActiveLearner learner(makeProblem(60), prototype(1e-1),
                            std::make_unique<al::VarianceReduction>(), cfg);
  Rng rng(6);
  const auto result = learner.run(rng);
  EXPECT_EQ(result.stopReason, al::StopReason::AmsdConverged);
  EXPECT_LT(result.history.size(), result.partition.active.size());
}

TEST(ActiveLearner, RmseDecreasesOverall) {
  // The paper's core claim: AL drives test RMSE down as experiments are
  // added.
  al::ActiveLearner learner(makeProblem(80, 7, 0.01), prototype(),
                            std::make_unique<al::VarianceReduction>(),
                            fastConfig(25));
  Rng rng(7);
  const auto result = learner.run(rng);
  ASSERT_GE(result.history.size(), 20u);
  const double early = result.history[1].rmse;
  double lateSum = 0.0;
  for (std::size_t i = result.history.size() - 5; i < result.history.size();
       ++i)
    lateSum += result.history[i].rmse;
  EXPECT_LT(lateSum / 5.0, early);
}

TEST(ActiveLearner, AmsdDecreasesWithHonestNoiseBound) {
  // With the raised noise bound (the paper's Fig. 7b regime) the early
  // model cannot overfit, so AMSD declines as the pool is learned. (With
  // a permissive bound the 1-point fits can start artificially low — the
  // Fig. 7a pathology — so the monotone claim only holds here.)
  al::ActiveLearner learner(makeProblem(80, 8, 0.01), prototype(1e-1),
                            std::make_unique<al::VarianceReduction>(),
                            fastConfig(25));
  Rng rng(8);
  const auto result = learner.run(rng);
  ASSERT_GE(result.history.size(), 10u);
  double earlyMax = 0.0, lateMin = 1e300;
  for (std::size_t i = 0; i < 3; ++i)
    earlyMax = std::max(earlyMax, result.history[i].amsd);
  for (std::size_t i = result.history.size() - 3; i < result.history.size();
       ++i)
    lateMin = std::min(lateMin, result.history[i].amsd);
  EXPECT_LT(lateMin, earlyMax);
}

TEST(ActiveLearner, DynamicNoiseBoundEnforced) {
  al::AlConfig cfg = fastConfig(10);
  cfg.dynamicNoiseBound = true;
  al::ActiveLearner learner(makeProblem(50), prototype(1e-8),
                            std::make_unique<al::VarianceReduction>(), cfg);
  Rng rng(9);
  const auto result = learner.run(rng);
  // With N training points the fitted σ_n² must obey σ_n² >= 1/√N.
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    const double nTrain = 1.0 + static_cast<double>(i);  // initial + picks
    EXPECT_GE(result.history[i].noiseVariance,
              1.0 / std::sqrt(nTrain) - 1e-9)
        << "iteration " << i;
  }
}

TEST(ActiveLearner, RefitCadenceStillLearns) {
  al::AlConfig cfg = fastConfig(12);
  cfg.refitEvery = 4;
  al::ActiveLearner learner(makeProblem(60, 10, 0.01), prototype(),
                            std::make_unique<al::VarianceReduction>(), cfg);
  Rng rng(10);
  const auto result = learner.run(rng);
  ASSERT_EQ(result.history.size(), 12u);
  EXPECT_LT(result.history.back().rmse, result.history.front().rmse * 2.0);
}

TEST(ActiveLearner, BatchModeConsumesBatchSize) {
  al::AlConfig cfg = fastConfig(5);
  cfg.batchSize = 3;
  al::ActiveLearner learner(makeProblem(60), prototype(),
                            std::make_unique<al::FantasyBatch>(), cfg);
  Rng rng(11);
  const auto result = learner.run(rng);
  ASSERT_EQ(result.history.size(), 5u);
  // 5 iterations × 3 picks = 15 experiments consumed; pickCost covers all
  // picks of the batch.
  for (const auto& rec : result.history) EXPECT_GT(rec.pickCost, 0.0);
}

TEST(ActiveLearner, SamePartitionSameSeedReproduces) {
  const auto problem = makeProblem(40);
  Rng prng(12);
  const auto partition = alperf::data::triPartition(40, 1, 0.8, prng);
  al::ActiveLearner learner(problem, prototype(),
                            std::make_unique<al::VarianceReduction>(),
                            fastConfig(8));
  Rng r1(13), r2(13);
  const auto a = learner.runWithPartition(partition, r1);
  const auto b = learner.runWithPartition(partition, r2);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].chosenRow, b.history[i].chosenRow);
    EXPECT_DOUBLE_EQ(a.history[i].rmse, b.history[i].rmse);
  }
}

TEST(ActiveLearner, SeriesExtraction) {
  al::ActiveLearner learner(makeProblem(30), prototype(),
                            std::make_unique<al::VarianceReduction>(),
                            fastConfig(6));
  Rng rng(14);
  const auto result = learner.run(rng);
  const auto rmse = result.series(&al::IterationRecord::rmse);
  ASSERT_EQ(rmse.size(), result.history.size());
  EXPECT_DOUBLE_EQ(rmse[0], result.history[0].rmse);
}

TEST(ActiveLearner, Validation) {
  EXPECT_THROW(al::ActiveLearner(makeProblem(20), prototype(), nullptr),
               std::invalid_argument);
  al::AlConfig bad;
  bad.refitEvery = 0;
  EXPECT_THROW(
      al::ActiveLearner(makeProblem(20), prototype(),
                        std::make_unique<al::VarianceReduction>(), bad),
      std::invalid_argument);
}

TEST(MakeProblem, FromTableWithLogColumns) {
  alperf::data::Table t;
  t.addNumeric("size", {10.0, 100.0, 1000.0});
  t.addNumeric("freq", {1.2, 1.8, 2.4});
  t.addNumeric("runtime", {1.0, 10.0, 100.0});
  t.addNumeric("cost", {5.0, 50.0, 500.0});
  const auto p = al::makeProblem(t, {"size", "freq"}, "runtime", "cost",
                                 {"size", "runtime"});
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.dim(), 2u);
  EXPECT_DOUBLE_EQ(p.x(0, 0), 1.0);   // log10(10)
  EXPECT_DOUBLE_EQ(p.x(2, 1), 2.4);   // freq not logged
  EXPECT_DOUBLE_EQ(p.y[1], 1.0);      // log10(10)
  EXPECT_DOUBLE_EQ(p.cost[2], 500.0); // cost stays linear
}

TEST(MakeProblem, DefaultUnitCost) {
  alperf::data::Table t;
  t.addNumeric("x", {1.0, 2.0});
  t.addNumeric("y", {3.0, 4.0});
  const auto p = al::makeProblem(t, {"x"}, "y");
  EXPECT_DOUBLE_EQ(p.cost[0], 1.0);
  EXPECT_DOUBLE_EQ(p.cost[1], 1.0);
}

TEST(BatchRunner, AggregatesAcrossReplicates) {
  al::BatchConfig cfg;
  cfg.replicates = 4;
  cfg.al = fastConfig(8);
  cfg.seed = 21;
  const auto batch = al::runBatch(
      makeProblem(50), prototype(),
      [] { return std::make_unique<al::VarianceReduction>(); }, cfg);
  EXPECT_EQ(batch.runs.size(), 4u);
  EXPECT_EQ(batch.minIterations(), 8u);
  const auto meanRmse = batch.meanSeries(&al::IterationRecord::rmse);
  ASSERT_EQ(meanRmse.size(), 8u);
  // The mean is inside the per-run range at each iteration.
  for (std::size_t i = 0; i < 8; ++i) {
    double lo = 1e300, hi = -1e300;
    for (const auto& run : batch.runs) {
      lo = std::min(lo, run.history[i].rmse);
      hi = std::max(hi, run.history[i].rmse);
    }
    EXPECT_GE(meanRmse[i], lo - 1e-12);
    EXPECT_LE(meanRmse[i], hi + 1e-12);
  }
}

TEST(BatchRunner, ReplicatesDiffer) {
  al::BatchConfig cfg;
  cfg.replicates = 3;
  cfg.al = fastConfig(5);
  const auto batch = al::runBatch(
      makeProblem(50), prototype(),
      [] { return std::make_unique<al::VarianceReduction>(); }, cfg);
  EXPECT_NE(batch.runs[0].partition.initial, batch.runs[1].partition.initial);
}

TEST(PairedBatch, IdenticalPartitionsAcrossStrategies) {
  al::BatchConfig cfg;
  cfg.replicates = 3;
  cfg.al = fastConfig(5);
  const auto results = al::runPairedBatch(
      makeProblem(50), prototype(),
      {[] { return std::make_unique<al::VarianceReduction>(); },
       [] { return std::make_unique<al::CostEfficiency>(); }},
      cfg);
  ASSERT_EQ(results.size(), 2u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(results[0].runs[r].partition.initial,
              results[1].runs[r].partition.initial);
    EXPECT_EQ(results[0].runs[r].partition.test,
              results[1].runs[r].partition.test);
  }
}
