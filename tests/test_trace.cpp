// Contract tests for the structured tracing layer (common/trace.hpp):
// disabled mode records nothing and bumps no trace.* counters, exported
// Chrome trace JSON is well-formed (validated by a minimal recursive-
// descent parser — no JSON library in the tree), span nesting and thread
// attribution hold, armed traces are deterministic modulo timestamps at
// one thread, and — the load-bearing invariant — AL results are
// bit-identical with tracing armed or disarmed.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/perf_stats.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "core/learner.hpp"
#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace gp = alperf::gp;
namespace la = alperf::la;
namespace trace = alperf::trace;
using alperf::Parallelism;
using alperf::PerfRegistry;
using alperf::stats::Rng;

namespace {

/// Leaves the tracer disarmed and empty, and the thread count automatic,
/// no matter how the test exits.
struct TraceGuard {
  ~TraceGuard() {
    trace::Tracer::instance().disarm();
    trace::Tracer::instance().clear();
    Parallelism::setThreads(0);
  }
};

// ------------------------------------------------ minimal JSON validator
//
// Just enough of RFC 8259 to assert the exporter's output parses:
// objects, arrays, strings with escapes, numbers, true/false/null.

void skipWs(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r'))
    ++i;
}

bool skipValue(const std::string& s, std::size_t& i);  // forward

bool skipString(const std::string& s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      ++i;
      if (i >= s.size()) return false;
    }
    ++i;
  }
  if (i >= s.size()) return false;
  ++i;  // closing quote
  return true;
}

bool skipNumber(const std::string& s, std::size_t& i) {
  const std::size_t start = i;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
  while (i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
          s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+'))
    ++i;
  return i > start;
}

bool skipObject(const std::string& s, std::size_t& i) {
  if (s[i] != '{') return false;
  ++i;
  skipWs(s, i);
  if (i < s.size() && s[i] == '}') {
    ++i;
    return true;
  }
  while (i < s.size()) {
    skipWs(s, i);
    if (!skipString(s, i)) return false;  // key
    skipWs(s, i);
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    if (!skipValue(s, i)) return false;
    skipWs(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  if (i >= s.size() || s[i] != '}') return false;
  ++i;
  return true;
}

bool skipArray(const std::string& s, std::size_t& i) {
  if (s[i] != '[') return false;
  ++i;
  skipWs(s, i);
  if (i < s.size() && s[i] == ']') {
    ++i;
    return true;
  }
  while (i < s.size()) {
    if (!skipValue(s, i)) return false;
    skipWs(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  if (i >= s.size() || s[i] != ']') return false;
  ++i;
  return true;
}

bool skipValue(const std::string& s, std::size_t& i) {
  skipWs(s, i);
  if (i >= s.size()) return false;
  switch (s[i]) {
    case '{':
      return skipObject(s, i);
    case '[':
      return skipArray(s, i);
    case '"':
      return skipString(s, i);
    case 't':
      if (s.compare(i, 4, "true") != 0) return false;
      i += 4;
      return true;
    case 'f':
      if (s.compare(i, 5, "false") != 0) return false;
      i += 5;
      return true;
    case 'n':
      if (s.compare(i, 4, "null") != 0) return false;
      i += 4;
      return true;
    default:
      return skipNumber(s, i);
  }
}

bool jsonParses(const std::string& s) {
  std::size_t i = 0;
  if (!skipValue(s, i)) return false;
  skipWs(s, i);
  return i == s.size();
}

// ----------------------------------------------------- campaign fixture

al::RegressionProblem syntheticProblem(std::size_t n = 40) {
  al::RegressionProblem p;
  p.x = la::Matrix(n, 2);
  p.y.resize(n);
  p.cost.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    p.x(i, 0) = 10.0 * t;
    p.x(i, 1) = std::cos(3.0 * t);
    p.y[i] = std::sin(6.0 * t) + 0.3 * t * t;
    p.cost[i] = 1.0 + 0.5 * t;
  }
  p.featureNames = {"x0", "x1"};
  p.responseName = "y";
  return p;
}

al::AlResult runCampaign(const al::AlConfig& cfg, unsigned seed = 7) {
  gp::GpConfig gpCfg;
  gpCfg.nRestarts = 1;
  gpCfg.noise.lo = 1e-4;
  gp::GaussianProcess proto(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                            gpCfg);
  al::AlConfig full = cfg;
  full.nInitial = 3;
  if (full.maxIterations < 0) full.maxIterations = 8;
  al::ActiveLearner learner(syntheticProblem(), std::move(proto),
                            std::make_unique<al::CostEfficiency>(), full);
  Rng rng(seed);
  return learner.run(rng);
}

}  // namespace

TEST(Trace, DisabledModeEmitsNothingAndBumpsNoCounters) {
  TraceGuard guard;
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.disarm();
  tracer.clear();
  PerfRegistry::instance().reset();

  {
    TRACE_SPAN("should.not.record");
    trace::Span annotated("also.not.recorded");
    annotated.note("k", 1).note("s", "v");
    trace::instant("nope");
    trace::counter("nope.counter", 4.0);
  }
  runCampaign({});  // the full instrumented hot path, disarmed

  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(PerfRegistry::instance().count("trace.arm"), 0u);
  EXPECT_EQ(PerfRegistry::instance().count("trace.events"), 0u);
  EXPECT_EQ(PerfRegistry::instance().count("trace.dropped"), 0u);
}

TEST(Trace, ExportedChromeJsonParsesAndCarriesRequiredFields) {
  TraceGuard guard;
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.arm();
  {
    trace::Span outer("outer");
    outer.note("iter", 3).note("ratio", 0.5).note("label", "a\"b\\c\n");
    {
      TRACE_SPAN("inner");
      trace::instant("marker");
      trace::counter("pool.remaining", 17.0);
    }
  }
  tracer.disarm();

  const std::string json = tracer.toChromeJson();
  EXPECT_TRUE(jsonParses(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"iter\":3"), std::string::npos);
  // The escaped annotation survives round-trip intact.
  EXPECT_NE(json.find("a\\\"b\\\\c\\n"), std::string::npos);

  const auto events = tracer.snapshot();
  // Two spans, one instant, one counter, plus the thread_name metadata
  // queued when the recording lane registered.
  std::size_t nonMeta = 0;
  const trace::TraceEvent* outerEv = nullptr;
  const trace::TraceEvent* innerEv = nullptr;
  for (const auto& e : events) {
    if (e.kind != trace::EventKind::Meta) ++nonMeta;
    if (e.name == "outer") outerEv = &e;
    if (e.name == "inner") innerEv = &e;
  }
  EXPECT_EQ(nonMeta, 4u);
  ASSERT_NE(outerEv, nullptr);
  ASSERT_NE(innerEv, nullptr);
  EXPECT_EQ(outerEv->tid, innerEv->tid);
  EXPECT_GE(innerEv->tsNanos, outerEv->tsNanos);
  EXPECT_LE(innerEv->tsNanos + innerEv->durNanos,
            outerEv->tsNanos + outerEv->durNanos);
}

TEST(Trace, ThreadAttributionIsWellFormed) {
  TraceGuard guard;
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.arm();

  // Two explicitly spawned threads (not pool workers, whose chunk
  // assignment is scheduling-dependent) each record on their own lane.
  const auto worker = [](const char* lane, const char* spanName) {
    trace::nameCurrentThread(lane);
    for (int i = 0; i < 3; ++i) {
      trace::Span s(spanName);
      s.note("i", i);
    }
  };
  std::thread a(worker, "lane.a", "work.a");
  std::thread b(worker, "lane.b", "work.b");
  a.join();
  b.join();
  tracer.disarm();

  const auto events = tracer.snapshot();
  std::uint32_t tidA = 0, tidB = 0;
  bool sawA = false, sawB = false;
  for (const auto& e : events) {
    if (e.kind != trace::EventKind::Meta) continue;
    if (e.args.find("lane.a") != std::string::npos) {
      tidA = e.tid;
      sawA = true;
    }
    if (e.args.find("lane.b") != std::string::npos) {
      tidB = e.tid;
      sawB = true;
    }
  }
  ASSERT_TRUE(sawA && sawB);
  EXPECT_NE(tidA, tidB);

  // Every work.a span sits on lane a, every work.b span on lane b, and
  // per-lane event ids strictly increase (deterministic sequence).
  std::uint64_t lastIdA = 0, lastIdB = 0;
  int spansA = 0, spansB = 0;
  for (const auto& e : events) {
    if (e.name == "work.a") {
      EXPECT_EQ(e.tid, tidA);
      EXPECT_GT(e.id, lastIdA);
      lastIdA = e.id;
      ++spansA;
    }
    if (e.name == "work.b") {
      EXPECT_EQ(e.tid, tidB);
      EXPECT_GT(e.id, lastIdB);
      lastIdB = e.id;
      ++spansB;
    }
  }
  EXPECT_EQ(spansA, 3);
  EXPECT_EQ(spansB, 3);
  // id layout: lane in the high 32 bits.
  EXPECT_EQ(lastIdA >> 32, tidA);
  EXPECT_EQ(lastIdB >> 32, tidB);
}

TEST(Trace, ArmedTraceIsDeterministicModuloTimestamps) {
  TraceGuard guard;
  Parallelism::setThreads(1);
  trace::Tracer& tracer = trace::Tracer::instance();

  // The timestamp-free projection of an event stream.
  struct Shape {
    std::string name;
    trace::EventKind kind;
    std::uint32_t tid;
    std::uint64_t id;
    std::string args;
    bool operator==(const Shape&) const = default;
  };
  const auto capture = [&] {
    tracer.arm();
    runCampaign({});
    tracer.disarm();
    std::vector<Shape> out;
    for (const auto& e : tracer.snapshot())
      out.push_back({e.name, e.kind, e.tid, e.id, e.args});
    return out;
  };

  const auto first = capture();
  const auto second = capture();
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_TRUE(first[i] == second[i])
        << "event " << i << ": " << first[i].name << " vs "
        << second[i].name;
}

TEST(Trace, AlResultsBitIdenticalWithTracingOnVsOff) {
  TraceGuard guard;
  Parallelism::setThreads(2);  // exercise the parallel paths too

  al::AlConfig plain;
  const auto off = runCampaign(plain);

  al::AlConfig traced;
  const std::string path =
      testing::TempDir() + "trace_bit_identity_out.json";
  traced.tracePath = path;
  const auto on = runCampaign(traced);

  ASSERT_EQ(off.history.size(), on.history.size());
  for (std::size_t i = 0; i < off.history.size(); ++i) {
    EXPECT_EQ(off.history[i].chosenRow, on.history[i].chosenRow) << i;
    EXPECT_EQ(off.history[i].sigmaAtPick, on.history[i].sigmaAtPick) << i;
    EXPECT_EQ(off.history[i].muAtPick, on.history[i].muAtPick) << i;
    EXPECT_EQ(off.history[i].amsd, on.history[i].amsd) << i;
    EXPECT_EQ(off.history[i].rmse, on.history[i].rmse) << i;
    EXPECT_EQ(off.history[i].noiseVariance, on.history[i].noiseVariance)
        << i;
    EXPECT_EQ(off.history[i].lml, on.history[i].lml) << i;
    EXPECT_EQ(off.history[i].cumulativeCost, on.history[i].cumulativeCost)
        << i;
  }
  const auto offTheta = off.finalGp.thetaFull();
  const auto onTheta = on.finalGp.thetaFull();
  ASSERT_EQ(offTheta.size(), onTheta.size());
  for (std::size_t i = 0; i < offTheta.size(); ++i)
    EXPECT_EQ(offTheta[i], onTheta[i]) << i;

  // The campaign scope exported a parseable Chrome trace as a side effect.
  std::string json;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << path;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
      json.append(buf, got);
    std::fclose(f);
  }
  std::remove(path.c_str());
  EXPECT_TRUE(jsonParses(json));
  EXPECT_NE(json.find("\"name\":\"al.iteration\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gp.fit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"al.score\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"al.select\""), std::string::npos);
}

TEST(Trace, CampaignScopeDoesNotClobberAmbientCapture) {
  TraceGuard guard;
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.arm();
  {
    // An inner campaign scope must neither disarm the ambient capture nor
    // write its file.
    trace::CampaignTraceScope scope("/nonexistent-dir/never-written.json");
    EXPECT_TRUE(tracer.enabled());
  }
  EXPECT_TRUE(tracer.enabled());
  tracer.disarm();
}

TEST(Trace, MetricsSnapshotIsJsonLines) {
  TraceGuard guard;
  PerfRegistry::instance().reset();
  PerfRegistry::instance().increment("demo.counter", 3);
  PerfRegistry::instance().addTiming("demo.timer", 1500000);

  const std::string jsonl = trace::metricsSnapshotJsonl();
  ASSERT_FALSE(jsonl.empty());
  std::size_t lines = 0;
  std::size_t start = 0;
  bool sawMeta = false, sawPerf = false;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    if (!line.empty()) {
      EXPECT_TRUE(jsonParses(line)) << line;
      if (line.find("\"type\":\"meta\"") != std::string::npos) sawMeta = true;
      if (line.find("\"demo.counter\"") != std::string::npos) sawPerf = true;
      ++lines;
    }
    start = end + 1;
  }
  EXPECT_GE(lines, 3u);
  EXPECT_TRUE(sawMeta);
  EXPECT_TRUE(sawPerf);
}
