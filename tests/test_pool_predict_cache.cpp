// Contract tests of gp::PoolPredictCache, the per-campaign pool posterior
// cache behind AlConfig::poolPredictCache. The load-bearing property is
// BIT-identity: a campaign with the cache on must produce the exact trace
// of one with it off (at any thread count), because served predictions are
// bitwise what a direct batch predict computes. The rest pins down the
// cache's lifecycle: grow-only appends on the incremental path, rebuilds
// on refit / theta change / kernel-mode flips, fallback on prior-only
// posteriors and unpinned rows, and survival of checkpoint resume and
// fault-injected factorization failures.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "common/fault_inject.hpp"
#include "common/perf_stats.hpp"
#include "common/thread_pool.hpp"
#include "core/learner.hpp"
#include "gp/kernels.hpp"
#include "gp/pool_predict_cache.hpp"
#include "la/blas.hpp"

namespace al = alperf::al;
namespace gp = alperf::gp;
namespace la = alperf::la;
using alperf::FaultInjector;
using alperf::Parallelism;
using alperf::PerfRegistry;
using alperf::stats::Rng;

namespace {

struct ThreadGuard {
  ~ThreadGuard() { Parallelism::setThreads(0); }
};

struct FaultGuard {
  explicit FaultGuard(const std::string& spec) {
    FaultInjector::instance().arm(spec);
  }
  ~FaultGuard() { FaultInjector::instance().disarm(); }
  FaultGuard(const FaultGuard&) = delete;
  FaultGuard& operator=(const FaultGuard&) = delete;
};

std::uint64_t counter(const std::string& name) {
  return PerfRegistry::instance().count(name);
}

al::RegressionProblem syntheticProblem(std::size_t n = 60) {
  al::RegressionProblem p;
  p.x = la::Matrix(n, 2);
  p.y.resize(n);
  p.cost.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    p.x(i, 0) = 10.0 * t;
    p.x(i, 1) = std::cos(3.0 * t);
    p.y[i] = std::sin(6.0 * t) + 0.3 * t * t;
    p.cost[i] = 1.0 + 0.5 * t;
  }
  p.featureNames = {"x0", "x1"};
  p.responseName = "y";
  return p;
}

gp::GaussianProcess smallGp(int nRestarts = 1) {
  gp::GpConfig cfg;
  cfg.nRestarts = nRestarts;
  cfg.noise.lo = 1e-4;
  return gp::GaussianProcess(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                             cfg);
}

void expectIdenticalHistory(const std::vector<al::IterationRecord>& a,
                            const std::vector<al::IterationRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].chosenRow, b[i].chosenRow) << "iter " << i;
    EXPECT_EQ(a[i].sigmaAtPick, b[i].sigmaAtPick) << "iter " << i;
    EXPECT_EQ(a[i].muAtPick, b[i].muAtPick) << "iter " << i;
    EXPECT_EQ(a[i].amsd, b[i].amsd) << "iter " << i;
    EXPECT_EQ(a[i].rmse, b[i].rmse) << "iter " << i;
    EXPECT_EQ(a[i].noiseVariance, b[i].noiseVariance) << "iter " << i;
    EXPECT_EQ(a[i].lml, b[i].lml) << "iter " << i;
  }
}

al::AlResult runCampaign(unsigned seed, al::AlConfig cfg) {
  cfg.nInitial = 4;
  if (cfg.maxIterations < 0) cfg.maxIterations = 12;
  al::ActiveLearner learner(syntheticProblem(), smallGp(),
                            std::make_unique<al::CostEfficiency>(), cfg);
  Rng rng(seed);
  return learner.run(rng);
}

/// A fitted GP over the first `nTrain` rows of `p` (no optimization, so
/// tests control theta and consume no RNG surprises).
gp::GaussianProcess fittedGp(const al::RegressionProblem& p,
                             std::size_t nTrain) {
  gp::GaussianProcess g = smallGp();
  g.config().optimize = false;
  la::Matrix x(nTrain, p.x.cols());
  la::Vector y(nTrain);
  for (std::size_t i = 0; i < nTrain; ++i) {
    const auto row = p.x.row(i);
    std::copy(row.begin(), row.end(), x.row(i).begin());
    y[i] = p.y[i];
  }
  Rng rng(5);
  g.fit(std::move(x), std::move(y), rng);
  return g;
}

la::Matrix gatherRows(const la::Matrix& x,
                      std::span<const std::size_t> rows) {
  la::Matrix m(rows.size(), x.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto row = x.row(rows[i]);
    std::copy(row.begin(), row.end(), m.row(i).begin());
  }
  return m;
}

}  // namespace

// ---------------------------------------------------------------- identity

TEST(PoolCache, ServedPredictionBitIdenticalToDirect) {
  const auto p = syntheticProblem(50);
  const auto g = fittedGp(p, 20);

  std::vector<std::size_t> pool(25);
  std::iota(pool.begin(), pool.end(), std::size_t{20});
  gp::PoolPredictCache cache;
  cache.pin(p.x, pool);

  // Full pool, then a strict subset, then a reordered subset.
  const std::vector<std::vector<std::size_t>> queries = {
      pool,
      {22, 30, 41},
      {44, 21, 33, 27},
  };
  for (const auto& q : queries) {
    gp::Prediction served;
    ASSERT_TRUE(cache.predict(g, q, false, served));
    const auto direct = g.predict(gatherRows(p.x, q));
    ASSERT_EQ(served.mean.size(), q.size());
    for (std::size_t i = 0; i < q.size(); ++i) {
      EXPECT_EQ(served.mean[i], direct.mean[i]) << "row " << q[i];
      EXPECT_EQ(served.variance[i], direct.variance[i]) << "row " << q[i];
    }
  }

  // includeNoise flows through identically.
  gp::Prediction servedNoise;
  ASSERT_TRUE(cache.predict(g, pool, true, servedNoise));
  const auto directNoise = g.predict(gatherRows(p.x, pool), true);
  for (std::size_t i = 0; i < pool.size(); ++i)
    EXPECT_EQ(servedNoise.variance[i], directNoise.variance[i]);
}

TEST(PoolCache, ServedPredictionBitIdenticalAfterExtend) {
  const auto p = syntheticProblem(50);
  auto g = fittedGp(p, 20);

  std::vector<std::size_t> pool(20);
  std::iota(pool.begin(), pool.end(), std::size_t{25});
  gp::PoolPredictCache cache;
  cache.pin(p.x, pool);

  gp::Prediction warm;
  ASSERT_TRUE(cache.predict(g, pool, false, warm));  // rebuild

  // Grow the posterior incrementally; the cache must append, and the
  // appended rows must reproduce a from-scratch direct predict bitwise.
  for (std::size_t t = 20; t < 24; ++t) g.addObservation(p.x.row(t), p.y[t]);
  const auto before = counter("gp.poolcache.rebuild");
  gp::Prediction served;
  ASSERT_TRUE(cache.predict(g, pool, false, served));
  EXPECT_EQ(counter("gp.poolcache.rebuild"), before);  // append, not rebuild

  const auto direct = g.predict(gatherRows(p.x, pool));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(served.mean[i], direct.mean[i]) << i;
    EXPECT_EQ(served.variance[i], direct.variance[i]) << i;
  }
}

// ---------------------------------------------------------------- lifecycle

TEST(PoolCache, SteadyIncrementalRunAppendsWithZeroRebuilds) {
  const auto p = syntheticProblem(60);
  auto g = fittedGp(p, 10);

  std::vector<std::size_t> pool(30);
  std::iota(pool.begin(), pool.end(), std::size_t{30});
  gp::PoolPredictCache cache;
  cache.pin(p.x, pool);

  gp::Prediction out;
  ASSERT_TRUE(cache.predict(g, pool, false, out));  // one rebuild to warm up
  const auto rebuilds = counter("gp.poolcache.rebuild");
  const auto appends0 = counter("gp.poolcache.append");
  const auto hits0 = counter("gp.poolcache.hit");

  for (std::size_t t = 10; t < 26; ++t) {
    g.addObservation(p.x.row(t), p.y[t]);
    ASSERT_TRUE(cache.predict(g, pool, false, out));  // append
    ASSERT_TRUE(cache.predict(g, pool, false, out));  // hit
  }
  EXPECT_EQ(counter("gp.poolcache.rebuild"), rebuilds);
  EXPECT_EQ(counter("gp.poolcache.append"), appends0 + 16);
  EXPECT_EQ(counter("gp.poolcache.hit"), hits0 + 16);
}

TEST(PoolCache, RebuildsOnFullRefitAndOnThetaChange) {
  const auto p = syntheticProblem(40);
  auto g = fittedGp(p, 15);

  std::vector<std::size_t> pool(20);
  std::iota(pool.begin(), pool.end(), std::size_t{15});
  gp::PoolPredictCache cache;
  cache.pin(p.x, pool);

  gp::Prediction out;
  ASSERT_TRUE(cache.predict(g, pool, false, out));
  const auto r0 = counter("gp.poolcache.rebuild");

  // A full posterior recomputation (same data, same theta) installs a new
  // posterior version: even a bitwise-equal refactorization must rebuild,
  // because an extension chain is not bitwise a refactorization.
  {
    la::Matrix x = g.trainX();
    la::Vector y = g.trainY();
    Rng rng(9);
    g.fit(std::move(x), std::move(y), rng);
  }
  ASSERT_TRUE(cache.predict(g, pool, false, out));
  EXPECT_EQ(counter("gp.poolcache.rebuild"), r0 + 1);

  // Hyperparameter change → rebuild (K_cross depends on theta).
  auto theta = g.thetaFull();
  theta[0] += 0.25;
  g.setThetaFull(theta);
  {
    la::Matrix x = g.trainX();
    la::Vector y = g.trainY();
    Rng rng(10);
    g.fit(std::move(x), std::move(y), rng);
  }
  ASSERT_TRUE(cache.predict(g, pool, false, out));
  EXPECT_EQ(counter("gp.poolcache.rebuild"), r0 + 2);

  // Unchanged posterior → pure hit.
  const auto h0 = counter("gp.poolcache.hit");
  ASSERT_TRUE(cache.predict(g, pool, false, out));
  EXPECT_EQ(counter("gp.poolcache.hit"), h0 + 1);
  EXPECT_EQ(counter("gp.poolcache.rebuild"), r0 + 2);
}

TEST(PoolCache, PriorOnlyPosteriorFallsBackThenRebuilds) {
  const auto p = syntheticProblem(40);
  auto g = fittedGp(p, 15);

  std::vector<std::size_t> pool(20);
  std::iota(pool.begin(), pool.end(), std::size_t{15});
  gp::PoolPredictCache cache;
  cache.pin(p.x, pool);

  gp::Prediction out;
  ASSERT_TRUE(cache.predict(g, pool, false, out));

  // Degrade to the prior-only rung: the cache must refuse (the caller's
  // direct predict serves the prior) and drop its dead products.
  {
    la::Matrix x = g.trainX();
    la::Vector y = g.trainY();
    g.fitPriorOnly(std::move(x), std::move(y));
  }
  EXPECT_FALSE(cache.predict(g, pool, false, out));

  // Recovery via a real fit → rebuild, serving again.
  const auto r0 = counter("gp.poolcache.rebuild");
  {
    la::Matrix x = g.trainX();
    la::Vector y = g.trainY();
    Rng rng(11);
    g.config().optimize = false;
    g.fit(std::move(x), std::move(y), rng);
  }
  ASSERT_TRUE(cache.predict(g, pool, false, out));
  EXPECT_EQ(counter("gp.poolcache.rebuild"), r0 + 1);
}

TEST(PoolCache, UnpinnedRowsAndDisabledBatchPredictFallBack) {
  const auto p = syntheticProblem(40);
  auto g = fittedGp(p, 15);

  std::vector<std::size_t> pool = {20, 21, 22, 23};
  gp::PoolPredictCache cache;
  cache.pin(p.x, pool);

  gp::Prediction out;
  const std::vector<std::size_t> unpinned = {20, 35};
  EXPECT_FALSE(cache.predict(g, unpinned, false, out));

  // The cache mirrors the batch prediction engine; with the engine off it
  // must not serve (and must not count anything).
  const auto hits = counter("gp.poolcache.hit");
  const auto rebuilds = counter("gp.poolcache.rebuild");
  g.config().batchPredict = false;
  EXPECT_FALSE(cache.predict(g, pool, false, out));
  EXPECT_EQ(counter("gp.poolcache.hit"), hits);
  EXPECT_EQ(counter("gp.poolcache.rebuild"), rebuilds);
}

TEST(PoolCache, KernelModeFlipForcesRebuild) {
  const auto p = syntheticProblem(40);
  const auto g = fittedGp(p, 15);

  std::vector<std::size_t> pool(20);
  std::iota(pool.begin(), pool.end(), std::size_t{15});
  gp::PoolPredictCache cache;
  cache.pin(p.x, pool);

  gp::Prediction out;
  ASSERT_TRUE(cache.predict(g, pool, false, out));
  const auto r0 = counter("gp.poolcache.rebuild");

  // Cached V was produced by the blocked trsm; under reference kernels the
  // per-column solve associates sums differently, so serving it would break
  // bit-identity with a direct reference predict. The mode is part of the
  // cache key.
  la::setBlockedKernels(false);
  gp::Prediction ref;
  ASSERT_TRUE(cache.predict(g, pool, false, ref));
  EXPECT_EQ(counter("gp.poolcache.rebuild"), r0 + 1);
  const auto direct = g.predict(gatherRows(p.x, pool));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(ref.mean[i], direct.mean[i]) << i;
    EXPECT_EQ(ref.variance[i], direct.variance[i]) << i;
  }
  la::setBlockedKernels(true);
}

// ---------------------------------------------------------------- campaigns

TEST(PoolCache, CampaignTraceBitIdenticalCacheOnVsOffAcrossThreads) {
  ThreadGuard guard;
  for (const int threads : {1, 2}) {
    Parallelism::setThreads(static_cast<std::size_t>(threads));
    al::AlConfig on;
    on.poolPredictCache = true;
    al::AlConfig off;
    off.poolPredictCache = false;
    const auto a = runCampaign(21, on);
    const auto b = runCampaign(21, off);
    expectIdenticalHistory(a.history, b.history);
    EXPECT_EQ(a.stopReason, b.stopReason);
    const auto ta = a.finalGp.thetaFull();
    const auto tb = b.finalGp.thetaFull();
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
  }
}

TEST(PoolCache, IncrementalCampaignTraceBitIdenticalAndAppendHeavy) {
  ThreadGuard guard;
  Parallelism::setThreads(2);
  al::AlConfig cfg;
  cfg.refitEvery = 5;  // incremental posterior between refits → appends
  cfg.maxIterations = 15;
  const auto appends0 = counter("gp.poolcache.append");
  cfg.poolPredictCache = true;
  const auto a = runCampaign(33, cfg);
  EXPECT_GT(counter("gp.poolcache.append"), appends0);
  cfg.poolPredictCache = false;
  const auto b = runCampaign(33, cfg);
  expectIdenticalHistory(a.history, b.history);
}

TEST(PoolCache, CampaignCountersShowHitsWhenOnAndNothingWhenOff) {
  al::AlConfig cfg;
  cfg.poolPredictCache = true;
  const auto h0 = counter("gp.poolcache.hit");
  runCampaign(44, cfg);
  EXPECT_GT(counter("gp.poolcache.hit"), h0);

  const auto h1 = counter("gp.poolcache.hit");
  const auto a1 = counter("gp.poolcache.append");
  const auto r1 = counter("gp.poolcache.rebuild");
  cfg.poolPredictCache = false;
  runCampaign(44, cfg);
  EXPECT_EQ(counter("gp.poolcache.hit"), h1);
  EXPECT_EQ(counter("gp.poolcache.append"), a1);
  EXPECT_EQ(counter("gp.poolcache.rebuild"), r1);
}

TEST(PoolCache, ChaosCholFailCampaignStaysBitIdenticalAndRebuilds) {
  // A mid-campaign factorization failure walks the degradation ladder
  // (possibly to the prior-only rung); the cache must ride through it —
  // falling back while degraded, rebuilding on recovery — without
  // perturbing the trace.
  const auto r0 = counter("gp.poolcache.rebuild");
  al::AlConfig on;
  on.poolPredictCache = true;
  al::AlConfig off;
  off.poolPredictCache = false;
  const auto runWithFault = [&](const al::AlConfig& cfg) {
    FaultGuard fault("chol.fail@iter=3,attempt=0");
    return runCampaign(55, cfg);
  };
  const auto a = runWithFault(on);
  const auto b = runWithFault(off);
  expectIdenticalHistory(a.history, b.history);
  // The recovery refit installed a new posterior version → at least the
  // warm-up rebuild plus the post-fault one.
  EXPECT_GE(counter("gp.poolcache.rebuild"), r0 + 2);
}

TEST(PoolCache, GoldenResumeHoldsWithCacheOn) {
  const auto problem = syntheticProblem();
  al::AlConfig cfg30;
  cfg30.nInitial = 4;
  cfg30.maxIterations = 20;
  cfg30.refitEvery = 4;  // exercise the resume chain-rebuild path
  al::AlConfig cfg10 = cfg30;
  cfg10.maxIterations = 10;
  al::ActiveLearner learner30(problem, smallGp(),
                              std::make_unique<al::CostEfficiency>(), cfg30);
  al::ActiveLearner learner10(problem, smallGp(),
                              std::make_unique<al::CostEfficiency>(), cfg10);
  Rng partRng(42);
  const auto partition =
      alperf::data::triPartition(problem.size(), 4, 0.8, partRng);

  Rng straightRng(7);
  const auto straight = learner30.runWithPartition(partition, straightRng);
  Rng halfRng(7);
  const auto half = learner10.runWithPartition(partition, halfRng);

  Rng resumeRng(123);  // irrelevant: checkpointed state wins
  const auto resumed = learner30.resume(half.checkpoint, resumeRng);
  expectIdenticalHistory(straight.history, resumed.history);
  EXPECT_EQ(straight.stopReason, resumed.stopReason);
}
