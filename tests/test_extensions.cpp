// Tests for the extension surfaces: exact-math GP posterior checks
// against hand-derived closed forms, AL trace serialization
// (historyToTable), and bootstrap confidence intervals.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/learner.hpp"
#include "data/csv.hpp"
#include "gp/kernels.hpp"
#include "stats/descriptive.hpp"

namespace al = alperf::al;
namespace gp = alperf::gp;
namespace la = alperf::la;
namespace st = alperf::stats;
using alperf::stats::Rng;

namespace {

la::Matrix col(const std::vector<double>& xs) {
  la::Matrix m(xs.size(), 1);
  for (std::size_t i = 0; i < xs.size(); ++i) m(i, 0) = xs[i];
  return m;
}

}  // namespace

// ----------------------------------------------------- exact GP posterior

TEST(GpExact, OnePointPosteriorClosedForm) {
  // Unit-amplitude RBF(l), noise sn2. With one training pair (x0, y0):
  //   mean(x*) = k(x*,x0) / (1 + sn2) * y0
  //   var(x*)  = 1 - k(x*,x0)^2 / (1 + sn2)
  const double l = 0.8, sn2 = 0.04, x0 = 1.0, y0 = 2.0;
  gp::GpConfig cfg;
  cfg.optimize = false;
  cfg.noise.initial = sn2;
  gp::GaussianProcess g(std::make_unique<gp::RbfKernel>(l), cfg);
  Rng rng(1);
  g.fit(col({x0}), la::Vector{y0}, rng);

  for (double q : {0.2, 1.0, 1.7, 3.0}) {
    const double k = std::exp(-(q - x0) * (q - x0) / (2.0 * l * l));
    const auto [mean, var] = g.predictOne(std::vector<double>{q});
    EXPECT_NEAR(mean, k / (1.0 + sn2) * y0, 1e-12) << "q=" << q;
    EXPECT_NEAR(var, 1.0 - k * k / (1.0 + sn2), 1e-12) << "q=" << q;
  }
}

TEST(GpExact, TwoPointPosteriorClosedForm) {
  // Two points, unit-amplitude RBF. Solve the 2x2 system by hand:
  // Ky = [[1+s, r], [r, 1+s]], inverse = 1/det [[1+s, -r], [-r, 1+s]].
  const double l = 1.0, s = 0.1;
  const double x0 = 0.0, x1 = 2.0, y0 = 1.0, y1 = -1.0;
  const double r = std::exp(-(x1 - x0) * (x1 - x0) / (2.0 * l * l));
  const double det = (1.0 + s) * (1.0 + s) - r * r;

  gp::GpConfig cfg;
  cfg.optimize = false;
  cfg.noise.initial = s;
  gp::GaussianProcess g(std::make_unique<gp::RbfKernel>(l), cfg);
  Rng rng(2);
  g.fit(col({x0, x1}), la::Vector{y0, y1}, rng);

  const double q = 0.7;
  const double k0 = std::exp(-(q - x0) * (q - x0) / 2.0);
  const double k1 = std::exp(-(q - x1) * (q - x1) / 2.0);
  const double a0 = ((1.0 + s) * y0 - r * y1) / det;
  const double a1 = (-r * y0 + (1.0 + s) * y1) / det;
  const double expectMean = k0 * a0 + k1 * a1;
  const double expectVar =
      1.0 - (k0 * ((1.0 + s) * k0 - r * k1) + k1 * (-r * k0 + (1.0 + s) * k1)) /
                det;

  const auto [mean, var] = g.predictOne(std::vector<double>{q});
  EXPECT_NEAR(mean, expectMean, 1e-12);
  EXPECT_NEAR(var, expectVar, 1e-12);
}

TEST(GpExact, LmlClosedFormOnePoint) {
  // log p(y) = -y²/(2(1+s)) - ½log(1+s) - ½log(2π) for one point with
  // unit-amplitude RBF.
  const double s = 0.25, y0 = 1.5;
  gp::GpConfig cfg;
  cfg.optimize = false;
  cfg.noise.initial = s;
  gp::GaussianProcess g(std::make_unique<gp::RbfKernel>(1.0), cfg);
  Rng rng(3);
  g.fit(col({0.0}), la::Vector{y0}, rng);
  const double expected = -y0 * y0 / (2.0 * (1.0 + s)) -
                          0.5 * std::log(1.0 + s) -
                          0.5 * std::log(2.0 * 3.14159265358979323846);
  EXPECT_NEAR(g.logMarginalLikelihood(), expected, 1e-12);
}

// ------------------------------------------------------- trace utilities

namespace {

al::AlResult smallRun() {
  al::RegressionProblem problem;
  const std::size_t n = 30;
  problem.x = la::Matrix(n, 1);
  problem.y.resize(n);
  problem.cost.assign(n, 2.0);
  for (std::size_t i = 0; i < n; ++i) {
    problem.x(i, 0) = static_cast<double>(i) * 0.3;
    problem.y[i] = std::sin(problem.x(i, 0));
  }
  problem.featureNames = {"x"};
  problem.responseName = "y";
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-3;
  al::AlConfig alCfg;
  alCfg.maxIterations = 6;
  al::ActiveLearner learner(
      problem, gp::GaussianProcess(gp::makeSquaredExponential(1.0, 1.0), cfg),
      std::make_unique<al::VarianceReduction>(), alCfg);
  Rng rng(4);
  return learner.run(rng);
}

}  // namespace

TEST(HistoryToTable, RoundTripsThroughCsv) {
  const auto result = smallRun();
  const auto table = al::historyToTable(result);
  ASSERT_EQ(table.numRows(), result.history.size());
  EXPECT_EQ(table.numCols(), 13u);
  for (std::size_t i = 0; i < table.numRows(); ++i) {
    EXPECT_DOUBLE_EQ(table.numeric("RMSE")[i], result.history[i].rmse);
    EXPECT_DOUBLE_EQ(table.numeric("CumulativeCost")[i],
                     result.history[i].cumulativeCost);
    EXPECT_DOUBLE_EQ(table.numeric("ChosenRow")[i],
                     static_cast<double>(result.history[i].chosenRow));
  }
  // CSV round trip preserves everything.
  std::ostringstream out;
  alperf::data::writeCsv(table, out);
  std::istringstream in(out.str());
  const auto back = alperf::data::readCsv(in);
  ASSERT_EQ(back.numRows(), table.numRows());
  for (std::size_t i = 0; i < back.numRows(); ++i)
    EXPECT_DOUBLE_EQ(back.numeric("SigmaAtPick")[i],
                     table.numeric("SigmaAtPick")[i]);
}

TEST(HistoryToTable, EmptyHistory) {
  al::AlResult empty{.history = {},
                     .partition = {},
                     .stopReason = al::StopReason::PoolExhausted,
                     .finalGp = gp::GaussianProcess(
                         gp::makeSquaredExponential(1.0, 1.0))};
  const auto table = al::historyToTable(empty);
  EXPECT_EQ(table.numRows(), 0u);
  EXPECT_EQ(table.numCols(), 13u);
}

TEST(StopReasonNames, AllDistinct) {
  EXPECT_EQ(al::toString(al::StopReason::PoolExhausted), "pool_exhausted");
  EXPECT_EQ(al::toString(al::StopReason::MaxIterations), "max_iterations");
  EXPECT_EQ(al::toString(al::StopReason::Budget), "budget");
  EXPECT_EQ(al::toString(al::StopReason::AmsdConverged), "amsd_converged");
}

// ------------------------------------------------------------- bootstrap

TEST(BootstrapMeanCi, CoversTrueMean) {
  Rng dataRng(5);
  std::vector<double> v(200);
  for (auto& x : v) x = dataRng.normal(10.0, 2.0);
  Rng rng(6);
  const auto ci = st::bootstrapMeanCi(v, 0.95, 2000, rng);
  EXPECT_NEAR(ci.pointEstimate, 10.0, 0.5);
  EXPECT_LT(ci.lo, ci.pointEstimate);
  EXPECT_GT(ci.hi, ci.pointEstimate);
  EXPECT_LT(ci.lo, 10.0);
  EXPECT_GT(ci.hi, 10.0);
  // Width ~ 2 * 1.96 * sd/sqrt(n) = 2*1.96*2/14.1 ≈ 0.55.
  EXPECT_NEAR(ci.hi - ci.lo, 0.55, 0.25);
}

TEST(BootstrapMeanCi, NarrowsWithSampleSize) {
  Rng dataRng(7);
  std::vector<double> small(20), large(500);
  for (auto& x : small) x = dataRng.normal(0.0, 1.0);
  for (auto& x : large) x = dataRng.normal(0.0, 1.0);
  Rng r1(8), r2(8);
  const auto ciSmall = st::bootstrapMeanCi(small, 0.95, 1000, r1);
  const auto ciLarge = st::bootstrapMeanCi(large, 0.95, 1000, r2);
  EXPECT_LT(ciLarge.hi - ciLarge.lo, ciSmall.hi - ciSmall.lo);
}

TEST(BootstrapMeanCi, Validation) {
  Rng rng(9);
  EXPECT_THROW(st::bootstrapMeanCi(std::vector<double>{}, 0.95, 100, rng),
               std::invalid_argument);
  const std::vector<double> v{1.0, 2.0};
  EXPECT_THROW(st::bootstrapMeanCi(v, 1.5, 100, rng), std::invalid_argument);
  EXPECT_THROW(st::bootstrapMeanCi(v, 0.95, 5, rng), std::invalid_argument);
}

TEST(BootstrapMeanCi, DegenerateConstantData) {
  const std::vector<double> v(50, 3.0);
  Rng rng(10);
  const auto ci = st::bootstrapMeanCi(v, 0.9, 200, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}
